// Package coormv2 is a Go implementation of CooRMv2, the Resource
// Management System for non-predictably evolving applications described in
// C. Klein and C. Pérez, "An RMS for Non-predictably Evolving
// Applications", INRIA RR-7644 / IEEE CLUSTER 2011.
//
// CooRMv2 lets an application reserve its peak expected resource usage with
// a pre-allocation while allocating only what it currently needs;
// pre-allocated-but-unused nodes are lent to malleable applications through
// preemptible requests and reclaimed — instantly (spontaneous updates) or
// with advance notice (announced updates).
//
// This package is a thin facade over the implementation packages:
//
//   - internal/core       — the scheduling algorithms (Algorithms 1–4)
//   - internal/rms        — the RMS server (sessions, node IDs, timers)
//   - internal/transport  — TCP daemon + client (JSON protocol)
//   - internal/sim        — discrete-event engine
//   - internal/amr        — the AMR application model of §2
//   - internal/apps       — application behaviours of §4
//   - internal/experiments — reproduction of every evaluation figure
//
// # Quick start
//
//	sim := coormv2.NewSimulation(map[coormv2.ClusterID]int{"c0": 64})
//	app := myHandler{}                   // implements coormv2.AppHandler
//	sess := sim.Server.Connect(app)
//	sess.Request(coormv2.RequestSpec{Cluster: "c0", N: 8, Duration: 3600,
//	    Type: coormv2.NonPreempt})
//	sim.Engine.RunAll()
//
// See examples/ for complete programs, DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-versus-measured results.
package coormv2

import (
	"coormv2/internal/amr"
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/transport"
	"coormv2/internal/view"
)

// Core resource-model types.
type (
	// ClusterID names a cluster in the resource model.
	ClusterID = view.ClusterID
	// View is an availability map pushed to applications (§3.1.4).
	View = view.View
	// RequestID identifies a request within an RMS instance.
	RequestID = request.ID
	// RequestType is PA / non-preemptible / preemptible (§3.1.1).
	RequestType = request.Type
	// Relation is the FREE / COALLOC / NEXT constraint (§3.1.2).
	Relation = request.Relation
	// RequestSpec is the application-provided part of a request.
	RequestSpec = rms.RequestSpec
	// PreemptPolicy divides preemptible resources (§3.2, §5.4).
	PreemptPolicy = core.PreemptPolicy
)

// Request types (§3.1.1).
const (
	PreAlloc   = request.PreAlloc
	NonPreempt = request.NonPreempt
	Preempt    = request.Preempt
)

// Request constraints (§3.1.2).
const (
	Free    = request.Free
	Coalloc = request.Coalloc
	Next    = request.Next
)

// Preemptible division policies.
const (
	EquiPartitionFilling = core.EquiPartitionFilling
	StrictEquiPartition  = core.StrictEquiPartition
)

// Server-side types.
type (
	// Server is a CooRMv2 RMS instance.
	Server = rms.Server
	// ServerConfig parametrizes a Server.
	ServerConfig = rms.Config
	// Session is one application's connection.
	Session = rms.Session
	// AppHandler receives RMS→application notifications.
	AppHandler = rms.AppHandler
	// Recorder accumulates evaluation metrics.
	Recorder = metrics.Recorder
	// Clock abstracts simulated versus wall-clock time.
	Clock = clock.Clock
)

// NewServer creates an RMS server (see rms.Config for the knobs).
func NewServer(cfg ServerConfig) *Server { return rms.NewServer(cfg) }

// NewRecorder creates a metrics recorder.
func NewRecorder() *Recorder { return metrics.NewRecorder() }

// NewRealClock returns a wall clock for running the RMS as a daemon.
func NewRealClock() Clock { return clock.NewRealClock() }

// AMR model re-exports (§2).
type SpeedupParams = amr.SpeedupParams

// DefaultAMRParams are the paper's fitted speed-up coefficients (§2.2).
var DefaultAMRParams = amr.DefaultParams

// Transport re-exports: the TCP daemon and client of the wire protocol.
type (
	// Daemon serves an RMS over TCP.
	Daemon = transport.Server
	// Client is the application-side TCP endpoint.
	Client = transport.Client
	// ClientHandler receives notifications on the client side.
	ClientHandler = transport.Handler
)

// NewDaemon wraps an RMS server for TCP serving.
func NewDaemon(s *Server) *Daemon { return transport.NewServer(s) }

// Dial connects to a CooRMv2 daemon.
func Dial(addr string, h ClientHandler) (*Client, error) { return transport.Dial(addr, h) }

// Simulation bundles a discrete-event engine, an RMS server driven by its
// virtual clock, and a metrics recorder — the setup used throughout the
// paper's evaluation.
type Simulation struct {
	Engine  *sim.Engine
	Server  *Server
	Metrics *Recorder
}

// SimOption customizes NewSimulation.
type SimOption func(*rms.Config)

// WithPolicy selects the preemptible division policy.
func WithPolicy(p PreemptPolicy) SimOption {
	return func(c *rms.Config) { c.Policy = p }
}

// WithReschedInterval sets the §3.2 re-scheduling interval (default 1 s).
func WithReschedInterval(d float64) SimOption {
	return func(c *rms.Config) { c.ReschedInterval = d }
}

// WithClip limits every application's non-preemptive view (§3.2).
func WithClip(v View) SimOption {
	return func(c *rms.Config) { c.Clip = v }
}

// NewSimulation creates a simulated CooRMv2 deployment with the given
// clusters (cluster ID → node count).
func NewSimulation(clusters map[ClusterID]int, opts ...SimOption) *Simulation {
	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	cfg := rms.Config{
		Clusters:        clusters,
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Metrics:         rec,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Simulation{Engine: e, Server: rms.NewServer(cfg), Metrics: rec}
}

// Clock returns the simulation's clock, for wiring application drivers.
func (s *Simulation) Clock() Clock { return clock.SimClock{E: s.Engine} }

// Run advances the simulation until the given virtual time.
func (s *Simulation) Run(until float64) { s.Engine.Run(until) }

// RunAll drains the event queue.
func (s *Simulation) RunAll() { s.Engine.RunAll() }

// Now returns the current virtual time.
func (s *Simulation) Now() float64 { return s.Engine.Now() }
