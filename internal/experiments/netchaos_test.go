package experiments

import (
	"testing"
	"time"

	"coormv2/internal/netchaos"
)

func netChaosFaults(seed int64) netchaos.Config {
	return netchaos.Config{
		Seed: seed, MeanBetween: 0.15, MeanDur: 0.04, Horizon: 1.2, MaxFaults: 6,
	}
}

// TestNetChaosResumeLosesNothing pins the headline property: with
// reconnect+resume, a seeded fault schedule costs reconnects but zero
// lost acknowledged requests and zero duplicate starts.
func TestNetChaosResumeLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scenario")
	}
	res, err := RunNetChaos(NetChaosConfig{
		Seed: 1, Jobs: 5, Resume: true,
		Faults: netChaosFaults(1),
		Grace:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5 {
		t.Fatalf("completed %d/5 jobs", res.Completed)
	}
	if res.LostAcks != 0 {
		t.Fatalf("resume mode lost %d acked requests", res.LostAcks)
	}
	if res.DupStarts != 0 {
		t.Fatalf("%d duplicate starts", res.DupStarts)
	}
	if res.Resubmits != 0 {
		t.Fatalf("resume mode resubmitted %d sessions", res.Resubmits)
	}
}

// TestNetChaosReplayBaselineCompletes pins the baseline: kill-and-replay
// still finishes the workload (by resubmitting), and the fault schedule
// fingerprint is identical to the resume run's — both modes face the
// exact same wire.
func TestNetChaosReplayBaselineCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scenario")
	}
	res, err := RunNetChaos(NetChaosConfig{
		Seed: 1, Jobs: 5, Resume: false,
		Faults: netChaosFaults(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5 {
		t.Fatalf("completed %d/5 jobs", res.Completed)
	}
	if res.DupStarts != 0 {
		t.Fatalf("%d duplicate starts", res.DupStarts)
	}
	want := netchaos.HashTrace(netchaos.TraceOf(netchaos.Plan(netChaosFaults(1))))
	if res.TraceHash != want {
		t.Fatalf("trace hash %#x, want %#x (schedule must be seed-stable)", res.TraceHash, want)
	}
}
