// Package workload provides rigid-job workload tooling: a parser for the
// Standard Workload Format (SWF) used by the Parallel Workloads Archive the
// paper cites [20], and a synthetic rigid-job generator. The paper's
// evaluation deliberately focuses on evolving + malleable applications
// ("we shall not evaluate our system against a trace of rigid jobs as is
// commonly done in the community", §5.1), but CooRMv2 supports rigid jobs
// (§4), and this package lets users replay them.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Job is one rigid job: submitted at Submit, asking for Nodes for Runtime
// seconds.
type Job struct {
	ID      int
	Submit  float64 // submission time, seconds from trace start
	Runtime float64 // requested/actual runtime in seconds
	Nodes   int     // number of processors requested
}

// ParseSWF reads jobs from a Standard Workload Format trace. SWF lines have
// 18 whitespace-separated fields; lines starting with ';' are header
// comments. The fields used here are: 1 job number, 2 submit time,
// 4 run time, 8 requested processors (falling back to field 5, allocated
// processors, when the request is absent). Jobs with non-positive runtime
// or processor count are skipped, as is customary when replaying SWF.
func ParseSWF(r io.Reader) ([]Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var jobs []Job
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 18 {
			return nil, fmt.Errorf("workload: line %d: %d fields, SWF needs 18", line, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: job number: %w", line, err)
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: submit time: %w", line, err)
		}
		runtime, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: run time: %w", line, err)
		}
		procs, err := strconv.Atoi(fields[7])
		if err != nil || procs <= 0 {
			// Fall back to allocated processors.
			procs, err = strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: processors: %w", line, err)
			}
		}
		if runtime <= 0 || procs <= 0 {
			continue
		}
		jobs = append(jobs, Job{ID: id, Submit: submit, Runtime: runtime, Nodes: procs})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	return jobs, nil
}

// FormatSWF writes jobs back out as a minimal SWF trace (unused fields are
// -1, per the format's convention).
func FormatSWF(w io.Writer, jobs []Job) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; SWF trace written by coormv2/internal/workload")
	for _, j := range jobs {
		// 18 fields: id submit wait run usedProc avgCPU usedMem reqProc
		// reqTime reqMem status uid gid app queue partition prevJob think
		if _, err := fmt.Fprintf(bw, "%d %.0f -1 %.0f %d -1 -1 %d %.0f -1 1 -1 -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Runtime, j.Nodes, j.Nodes, j.Runtime); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SyntheticConfig parametrizes the rigid-job generator.
type SyntheticConfig struct {
	Jobs           int
	MaxNodes       int     // per-job node count upper bound
	MeanInterArr   float64 // exponential inter-arrival mean, seconds
	MeanRuntime    float64 // exponential runtime mean, seconds
	MinRuntime     float64 // floor for runtimes (default 60 s)
	PowerOfTwoBias float64 // probability a job requests a power-of-two node count
}

// Synthetic generates a reproducible rigid-job stream with exponential
// inter-arrivals and runtimes, the standard shape of supercomputer logs.
func Synthetic(rng *rand.Rand, cfg SyntheticConfig) []Job {
	if cfg.Jobs <= 0 {
		return nil
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 128
	}
	if cfg.MeanInterArr <= 0 {
		cfg.MeanInterArr = 300
	}
	if cfg.MeanRuntime <= 0 {
		cfg.MeanRuntime = 3600
	}
	if cfg.MinRuntime <= 0 {
		cfg.MinRuntime = 60
	}
	jobs := make([]Job, 0, cfg.Jobs)
	t := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		t += rng.ExpFloat64() * cfg.MeanInterArr
		n := 1 + rng.Intn(cfg.MaxNodes)
		if rng.Float64() < cfg.PowerOfTwoBias {
			p := 1
			for p*2 <= n {
				p *= 2
			}
			n = p
		}
		rt := rng.ExpFloat64() * cfg.MeanRuntime
		if rt < cfg.MinRuntime {
			rt = cfg.MinRuntime
		}
		jobs = append(jobs, Job{ID: i + 1, Submit: t, Runtime: rt, Nodes: n})
	}
	return jobs
}

// Stats summarizes a job stream.
type Stats struct {
	Jobs      int
	TotalArea float64 // Σ nodes × runtime
	MaxNodes  int
	Makespan  float64 // last submit + its runtime (lower bound)
}

// Summarize computes aggregate statistics of a job stream.
func Summarize(jobs []Job) Stats {
	var s Stats
	s.Jobs = len(jobs)
	for _, j := range jobs {
		s.TotalArea += float64(j.Nodes) * j.Runtime
		if j.Nodes > s.MaxNodes {
			s.MaxNodes = j.Nodes
		}
		if end := j.Submit + j.Runtime; end > s.Makespan {
			s.Makespan = end
		}
	}
	return s
}
