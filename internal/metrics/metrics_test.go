package metrics

import (
	"math"
	"testing"
)

func TestAreaIntegration(t *testing.T) {
	r := NewRecorder()
	r.SetAlloc(1, 0, 4)
	r.SetAlloc(1, 10, 2) // 4 nodes for 10s = 40
	r.SetAlloc(1, 20, 0) // 2 nodes for 10s = 20
	if got := r.Area(1, 30); got != 60 {
		t.Errorf("Area = %v, want 60", got)
	}
	// Querying later does not change the (zero-alloc) area.
	if got := r.Area(1, 100); got != 60 {
		t.Errorf("Area after idle = %v, want 60", got)
	}
}

func TestAreaPartialQuery(t *testing.T) {
	r := NewRecorder()
	r.SetAlloc(1, 0, 10)
	if got := r.Area(1, 5); got != 50 {
		t.Errorf("Area mid-allocation = %v, want 50", got)
	}
	if got := r.Area(1, 7); got != 70 {
		t.Errorf("Area advanced = %v, want 70", got)
	}
}

// TestTimeBackwardsClamped: an out-of-order timestamp must not
// integrate negative area or rewind the track — the stale update's
// allocation takes effect from the already-reached time instead.
func TestTimeBackwardsClamped(t *testing.T) {
	r := NewRecorder()
	r.SetAlloc(1, 10, 4)
	r.SetAlloc(1, 5, 2) // stale: clamps to t=10, area unchanged
	if got := r.Area(1, 10); got != 0 {
		t.Errorf("Area at t=10 = %v, want 0 (no negative integration)", got)
	}
	// The stale call still set the allocation: 2 nodes from t=10 on.
	if got := r.Area(1, 20); got != 20 {
		t.Errorf("Area at t=20 = %v, want 20", got)
	}
	// Same guard on the pre-allocation integral.
	r.SetPreAlloc(2, 10, 8)
	r.SetPreAlloc(2, 0, 1)
	if got := r.PreAllocArea(2, 10); got != 0 {
		t.Errorf("PreAllocArea at t=10 = %v, want 0", got)
	}
	if got := r.PreAllocArea(2, 15); got != 5 {
		t.Errorf("PreAllocArea at t=15 = %v, want 5 (1 node × 5 s)", got)
	}
	// A stale Area query must not rewind lastT either.
	r.SetAlloc(3, 10, 1)
	if got := r.Area(3, 5); got != 0 {
		t.Errorf("stale Area query = %v, want 0", got)
	}
	if got := r.Area(3, 20); got != 10 {
		t.Errorf("Area after stale query = %v, want 10", got)
	}
}

func TestTotals(t *testing.T) {
	r := NewRecorder()
	r.IncCounter(1, ChurnRequests, 3)
	r.IncCounter(2, ChurnRequests, 4)
	r.IncCounter(2, KilledSessions, 1)
	tot := r.Totals()
	if len(tot) != int(numCounters) {
		t.Fatalf("Totals has %d keys, want %d", len(tot), numCounters)
	}
	if tot["churn-requests"] != 7 || tot["killed-sessions"] != 1 || tot["dropped-requests"] != 0 {
		t.Errorf("Totals = %v", tot)
	}
}

func TestPreAllocArea(t *testing.T) {
	r := NewRecorder()
	r.SetPreAlloc(1, 0, 8)
	r.SetAlloc(1, 0, 2)
	if got := r.PreAllocArea(1, 10); got != 80 {
		t.Errorf("PreAllocArea = %v, want 80", got)
	}
	if got := r.Area(1, 10); got != 20 {
		t.Errorf("Area = %v, want 20", got)
	}
}

func TestWaste(t *testing.T) {
	r := NewRecorder()
	r.AddWaste(1, 100)
	r.AddWaste(1, 50)
	r.AddWaste(2, 7)
	if r.Waste(1) != 150 || r.Waste(2) != 7 {
		t.Error("Waste accumulation wrong")
	}
	if r.TotalWaste() != 157 {
		t.Errorf("TotalWaste = %v", r.TotalWaste())
	}
}

func TestNegativeWastePanics(t *testing.T) {
	r := NewRecorder()
	defer func() {
		if recover() == nil {
			t.Error("negative waste should panic")
		}
	}()
	r.AddWaste(1, -1)
}

func TestMaxAllocCurrent(t *testing.T) {
	r := NewRecorder()
	r.SetAlloc(1, 0, 4)
	r.SetAlloc(1, 1, 9)
	r.SetAlloc(1, 2, 3)
	if r.MaxAlloc(1) != 9 {
		t.Errorf("MaxAlloc = %d", r.MaxAlloc(1))
	}
	if r.Current(1) != 3 {
		t.Errorf("Current = %d", r.Current(1))
	}
}

func TestTotalAreaAndUsedFraction(t *testing.T) {
	r := NewRecorder()
	r.SetAlloc(1, 0, 6)
	r.SetAlloc(2, 0, 4)
	// 10 nodes busy on a 10-node cluster for 100 s, 100 node·s wasted:
	// used fraction = (1000-100)/1000 = 0.9.
	r.AddWaste(2, 100)
	if got := r.TotalArea(100); got != 1000 {
		t.Errorf("TotalArea = %v", got)
	}
	if got := r.UsedFraction(10, 100); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("UsedFraction = %v, want 0.9", got)
	}
}

func TestUsedFractionDegenerate(t *testing.T) {
	r := NewRecorder()
	if r.UsedFraction(0, 100) != 0 || r.UsedFraction(10, 0) != 0 {
		t.Error("degenerate used fraction should be 0")
	}
	// Waste exceeding area clamps at 0.
	r.AddWaste(1, 50)
	if r.UsedFraction(10, 10) != 0 {
		t.Error("used fraction should clamp at 0")
	}
}

func TestAppsAndReport(t *testing.T) {
	r := NewRecorder()
	r.SetAlloc(3, 0, 1)
	r.SetAlloc(1, 0, 2)
	r.SetPreAlloc(1, 0, 5)
	r.AddWaste(3, 9)
	apps := r.Apps()
	if len(apps) != 2 || apps[0] != 1 || apps[1] != 3 {
		t.Fatalf("Apps = %v", apps)
	}
	rep := r.Report(10)
	if len(rep) != 2 {
		t.Fatalf("Report = %v", rep)
	}
	if rep[0].AppID != 1 || rep[0].UsedArea != 20 || rep[0].PreAllocArea != 50 {
		t.Errorf("Report[0] = %+v", rep[0])
	}
	if rep[1].AppID != 3 || rep[1].Waste != 9 || rep[1].UsedArea != 10 {
		t.Errorf("Report[1] = %+v", rep[1])
	}
}

func TestUnknownAppZeroes(t *testing.T) {
	r := NewRecorder()
	if r.Area(42, 10) != 0 || r.Waste(42) != 0 || r.MaxAlloc(42) != 0 {
		t.Error("unknown app should read as zero")
	}
}

func TestAggregateSumsAcrossShards(t *testing.T) {
	// Two shard recorders plus a client-side recorder for waste, the shape
	// internal/federation and the experiment harness use.
	shard0, shard1, client := NewRecorder(), NewRecorder(), NewRecorder()
	shard0.SetAlloc(1, 0, 4) // app 1 holds 4 nodes on shard 0
	shard1.SetAlloc(1, 0, 2) // ... and 2 nodes on shard 1
	shard0.SetAlloc(2, 0, 3)
	shard0.SetPreAlloc(1, 0, 5)
	client.AddWaste(2, 7)

	a := NewAggregate(client, shard0, nil, shard1)
	if got := a.Area(1, 10); got != 60 {
		t.Errorf("Area(1) = %v, want 60", got)
	}
	if got := a.Area(2, 10); got != 30 {
		t.Errorf("Area(2) = %v, want 30", got)
	}
	if got := a.PreAllocArea(1, 10); got != 50 {
		t.Errorf("PreAllocArea(1) = %v, want 50", got)
	}
	if got := a.Waste(2); got != 7 {
		t.Errorf("Waste(2) = %v, want 7", got)
	}
	if got := a.TotalArea(10); got != 90 {
		t.Errorf("TotalArea = %v, want 90", got)
	}
	if got := a.TotalWaste(); got != 7 {
		t.Errorf("TotalWaste = %v, want 7", got)
	}
	// (90 - 7) / (10 nodes × 10 s)
	if got := a.UsedFraction(10, 10); got != 0.83 {
		t.Errorf("UsedFraction = %v, want 0.83", got)
	}
	if apps := a.Apps(); len(apps) != 2 || apps[0] != 1 || apps[1] != 2 {
		t.Errorf("Apps = %v, want [1 2]", apps)
	}
	if n := len(a.Recorders()); n != 3 {
		t.Errorf("Recorders = %d, want 3 (nil skipped)", n)
	}
}
