package apps

import (
	"fmt"

	"coormv2/internal/amr"
	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// NEAMode selects how the synthetic AMR behaves in the evaluation (§5.2):
// Dynamic is the CooRMv2 behaviour (allocate only what the current step
// needs, inside the pre-allocation); Static forces the application "to use
// all the resources it has pre-allocated", the baseline.
type NEAMode uint8

const (
	// NEADynamic adapts the allocation every step.
	NEADynamic NEAMode = iota
	// NEAStatic holds the full pre-allocation for the whole run.
	NEAStatic
)

// NEAConfig parametrizes the synthetic AMR application.
type NEAConfig struct {
	Cluster view.ClusterID
	// Profile is the working-set evolution (not known to the application in
	// advance — it only ever reads Profile[step]).
	Profile amr.Profile
	// Params is the speed-up model, which the application does know (§5.1.1
	// "the application knows its speed-up model, but cannot predict how the
	// working set will evolve").
	Params amr.SpeedupParams
	// TargetEff is the efficiency the application targets (75 % in §5).
	TargetEff float64
	// PreAllocN is the user's guess of the equivalent static allocation
	// (overcommit factor × n_eq), used as the pre-allocation size: the
	// "sure execution" strategy of §4.
	PreAllocN int
	// Mode selects dynamic or static behaviour.
	Mode NEAMode
	// AnnounceInterval, when positive, switches from spontaneous updates to
	// announced updates with this notice (§5.3). The node-count in the
	// update is the count required at the moment the update is initiated.
	AnnounceInterval float64
	// Horizon is the pre-allocation duration; it must exceed the actual run
	// time. The default (1e8 s) is effectively "until done() is called".
	Horizon float64
}

// NEA is the synthetic non-predictably evolving AMR application of §5.1.1.
type NEA struct {
	base
	cfg NEAConfig

	paID   request.ID
	curReq request.ID
	curN   int
	curIDs []int

	step       int
	stepTimer  clock.Timer
	updating   bool // an update is in flight (waiting for OnStart)
	pendingN   int  // node-count of the in-flight update
	blockStep  bool // spontaneous update: step loop waits for the new nodes
	finished   bool
	paStarted  bool
	reqStarted bool

	// Results.
	StartTime float64
	EndTime   float64
	// Err records a protocol error; the simulation harness fails on it.
	Err error
	// OnFinish, when set, runs right after the application completes
	// (the experiment harness uses it to freeze the simulation clock at
	// the makespan).
	OnFinish func()
}

// NewNEA creates the AMR application.
func NewNEA(clk clock.Clock, cfg NEAConfig) *NEA {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 1e8
	}
	if cfg.TargetEff <= 0 {
		cfg.TargetEff = 0.75
	}
	return &NEA{base: base{clk: clk}, cfg: cfg}
}

// Finished reports whether the application completed all its steps.
func (a *NEA) Finished() bool { return a.finished }

// Step returns the current step index (== len(Profile) when finished).
func (a *NEA) Step() int { return a.step }

// CurrentNodes returns the currently allocated node count.
func (a *NEA) CurrentNodes() int { return a.curN }

// desiredNodes returns the node-count for the given step, clamped into
// [1, PreAllocN]: a sure-execution NEA never outgrows its pre-allocation.
func (a *NEA) desiredNodes(step int) int {
	if a.cfg.Mode == NEAStatic {
		return a.cfg.PreAllocN
	}
	n := a.cfg.Params.NodesForEfficiency(a.cfg.Profile[step], a.cfg.TargetEff)
	if n > a.cfg.PreAllocN {
		n = a.cfg.PreAllocN
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Submit sends the pre-allocation and the initial non-preemptible request
// (COALLOCated so they start together).
func (a *NEA) Submit() error {
	if len(a.cfg.Profile) == 0 {
		return fmt.Errorf("apps: NEA needs a profile")
	}
	if a.cfg.PreAllocN < 1 {
		return fmt.Errorf("apps: NEA needs a positive pre-allocation")
	}
	pa, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: a.cfg.PreAllocN, Duration: a.cfg.Horizon, Type: request.PreAlloc,
	})
	if err != nil {
		return err
	}
	a.paID = pa
	n0 := a.desiredNodes(0)
	r0, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: n0, Duration: a.cfg.Horizon,
		Type: request.NonPreempt, RelatedHow: request.Coalloc, RelatedTo: pa,
	})
	if err != nil {
		return err
	}
	a.curReq = r0
	a.curN = n0
	return nil
}

// OnViews is ignored: a sure-execution NEA relies on its pre-allocation,
// not on view scanning.
func (a *NEA) OnViews(_, _ view.View) {}

// OnStart drives the application's state machine.
func (a *NEA) OnStart(id request.ID, nodeIDs []int) {
	switch {
	case id == a.paID:
		a.paStarted = true

	case id == a.curReq && !a.reqStarted:
		// Initial allocation: begin computing.
		a.reqStarted = true
		a.curIDs = nodeIDs
		a.StartTime = a.now()
		a.runStep()

	case a.updating && id == a.curReq:
		// An update completed (spontaneous or the tail of an announced
		// chain): adopt the new allocation.
		a.updating = false
		a.curIDs = nodeIDs
		a.curN = a.pendingN
		if a.blockStep {
			a.blockStep = false
			a.runStep()
		}
	}
}

// runStep executes the current computation step and schedules the next.
func (a *NEA) runStep() {
	if a.finished || a.killed {
		return
	}
	if a.step >= len(a.cfg.Profile) {
		a.finish()
		return
	}
	dur := a.cfg.Params.StepTime(a.curN, a.cfg.Profile[a.step])
	a.stepTimer = a.clk.AfterFunc(dur, "nea.step", func() {
		a.step++
		if a.step >= len(a.cfg.Profile) {
			a.finish()
			return
		}
		a.maybeUpdate()
		if !a.blockStep {
			a.runStep()
		}
	})
}

// maybeUpdate adjusts the allocation to the new step's requirement using a
// spontaneous or announced update (§3.1.3).
func (a *NEA) maybeUpdate() {
	if a.updating {
		return // one update in flight at a time
	}
	desired := a.desiredNodes(a.step)
	if desired == a.curN {
		return
	}
	if a.cfg.AnnounceInterval <= 0 {
		a.spontaneousUpdate(desired)
	} else {
		a.announcedUpdate(desired)
	}
}

// spontaneousUpdate is Fig. 6(b): request(new) NEXT current, done(current).
// The step loop blocks until the new allocation is delivered — the RMS
// guarantees it promptly because it is inside the pre-allocation.
func (a *NEA) spontaneousUpdate(desired int) {
	newReq, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: desired, Duration: a.cfg.Horizon,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: a.curReq,
	})
	if err != nil {
		a.Err = err
		return
	}
	var release []int
	if desired < a.curN {
		release = lastN(a.curIDs, a.curN-desired)
	}
	if err := a.sess.Done(a.curReq, release); err != nil {
		a.Err = err
		return
	}
	a.curReq = newReq
	a.pendingN = desired
	a.updating = true
	a.blockStep = true
}

// announcedUpdate is Fig. 6(c): a bridge request keeps the current
// node-count for the announce interval, then the new node-count follows.
// Computation continues at the current allocation during the notice —
// "the AMR receives new nodes later than it would require to maintain its
// target efficiency" (§5.3).
func (a *NEA) announcedUpdate(desired int) {
	bridge, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: a.curN, Duration: a.cfg.AnnounceInterval,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: a.curReq,
	})
	if err != nil {
		a.Err = err
		return
	}
	newReq, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: desired, Duration: a.cfg.Horizon,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: bridge,
	})
	if err != nil {
		a.Err = err
		return
	}
	if err := a.sess.Done(a.curReq, nil); err != nil {
		a.Err = err
		return
	}
	a.curReq = newReq
	a.pendingN = desired
	a.updating = true
	// blockStep stays false: steps continue at the old allocation.
}

// finish releases everything.
func (a *NEA) finish() {
	a.finished = true
	a.EndTime = a.now()
	if a.reqStarted {
		_ = a.sess.Done(a.curReq, nil)
	}
	if a.paStarted {
		_ = a.sess.Done(a.paID, nil)
	}
	if a.OnFinish != nil {
		a.OnFinish()
	}
}
