package obs

import "sync"

// Event types recorded through the tree. Kept as short stable strings:
// they appear verbatim in /debug/obs JSON and experiment snapshots.
const (
	EvRound       = "round"        // one scheduling round (Value = clock seconds)
	EvStart       = "start"        // request admit→start (Value = wait seconds)
	EvReap        = "reap"         // request done→reap (Value = reap lag seconds)
	EvMerge       = "merge"        // federated view re-merge (Value = clock seconds)
	EvMigrate     = "migrate"      // live cluster migration (Value = pause seconds)
	EvCrash       = "crash"        // shard crash fault
	EvRestart     = "restart"      // shard restart (Value = outage seconds)
	EvNodeFail    = "node_fail"    // machine failures in a cluster (Value = node count)
	EvNodeRecover = "node_recover" // machine repairs in a cluster (Value = node count)
	EvGangCommit  = "gang_commit"  // cross-shard reservation committed (Value = hold→commit seconds)
	EvGangAbort   = "gang_abort"   // cross-shard reservation dropped (Value = hold→abort seconds)
	EvPreempt     = "preempt"      // quota preemption revoked an allocation (Value = nodes granted)
	EvConnDrop    = "conn_drop"    // transport connection died with a live session
	EvResume      = "resume"       // session resumed on a fresh connection (Value = outage seconds)
)

// Event is one structured trace entry: typed, timestamped on the
// sim/real clock, and attributable to a shard/app/cluster/request.
// Unused attribution fields stay at their zero values and are elided
// from JSON.
type Event struct {
	Seq     uint64  `json:"seq"`
	Time    float64 `json:"t"`
	Type    string  `json:"type"`
	Shard   string  `json:"shard,omitempty"`
	App     int     `json:"app,omitempty"`
	Cluster string  `json:"cluster,omitempty"`
	Request int     `json:"req,omitempty"`
	Value   float64 `json:"value,omitempty"`
}

// Ring is a bounded event buffer: appends are O(1) and alloc-free, and
// once full the oldest entry is overwritten. The total count keeps
// rising so consumers can detect loss.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64
}

// NewRing returns a ring holding the most recent capacity events
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Add records one event, stamping its sequence number.
func (r *Ring) Add(e Event) {
	r.mu.Lock()
	e.Seq = r.total
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	capN := uint64(len(r.buf))
	if n > capN {
		out := make([]Event, capN)
		start := n % capN
		copy(out, r.buf[start:])
		copy(out[capN-start:], r.buf[:start])
		return out
	}
	out := make([]Event, n)
	copy(out, r.buf[:n])
	return out
}

// Total returns how many events were ever recorded (retained or not).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
