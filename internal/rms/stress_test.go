package rms

import (
	"math"
	"math/rand"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// chaosApp performs random protocol-legal operations: it submits random
// requests (pre-allocations, non-preemptible inside them, preemptible),
// randomly updates and finishes them, and always cooperates with
// preemption. The stress test asserts global invariants that must hold for
// ANY workload: node-ID conservation, no double allocation, and no
// cooperative kill.
type chaosApp struct {
	t    *testing.T
	rng  *rand.Rand
	e    *sim.Engine
	sess *Session

	pa      request.ID
	paN     int
	np      request.ID
	npN     int
	npIDs   []int
	preempt request.ID
	pIDs    []int

	killed bool
}

func (a *chaosApp) OnViews(_, p view.View) {
	if a.killed || a.preempt == 0 {
		return
	}
	// Cooperate: if the preemptive view dropped below the holding, release
	// immediately.
	avail := p.Get(c0).Value(a.e.Now())
	if avail < 0 {
		avail = 0
	}
	if avail < len(a.pIDs) {
		rel := a.pIDs[avail:]
		if avail == 0 {
			if err := a.sess.Done(a.preempt, nil); err == nil {
				a.preempt = 0
				a.pIDs = nil
			}
			return
		}
		next, err := a.sess.Request(RequestSpec{
			Cluster: c0, N: avail, Duration: math.Inf(1),
			Type: request.Preempt, RelatedHow: request.Next, RelatedTo: a.preempt,
		})
		if err != nil {
			return
		}
		if err := a.sess.Done(a.preempt, rel); err != nil {
			return
		}
		a.preempt = next
		a.pIDs = a.pIDs[:avail]
	}
}

func (a *chaosApp) OnStart(id request.ID, ids []int) {
	switch id {
	case a.np:
		a.npIDs = ids
	case a.preempt:
		a.pIDs = ids
	}
}

func (a *chaosApp) OnKill(reason string) {
	a.killed = true
	a.t.Errorf("cooperative app killed: %s", reason)
}

// act performs one random operation.
func (a *chaosApp) act() {
	if a.killed {
		return
	}
	switch a.rng.Intn(6) {
	case 0: // (re-)establish a pre-allocation with an allocation inside
		if a.pa != 0 {
			return
		}
		a.paN = 1 + a.rng.Intn(6)
		pa, err := a.sess.Request(RequestSpec{Cluster: c0, N: a.paN, Duration: 200 + a.rng.Float64()*400, Type: request.PreAlloc})
		if err != nil {
			return
		}
		n := 1 + a.rng.Intn(a.paN)
		np, err := a.sess.Request(RequestSpec{Cluster: c0, N: n, Duration: 100 + a.rng.Float64()*200,
			Type: request.NonPreempt, RelatedHow: request.Coalloc, RelatedTo: pa})
		if err != nil {
			return
		}
		a.pa, a.np, a.npN = pa, np, n

	case 1: // spontaneous update inside the pre-allocation
		if a.np == 0 || len(a.npIDs) == 0 {
			return
		}
		want := 1 + a.rng.Intn(a.paN)
		next, err := a.sess.Request(RequestSpec{Cluster: c0, N: want, Duration: 100 + a.rng.Float64()*200,
			Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: a.np})
		if err != nil {
			return
		}
		var rel []int
		if want < len(a.npIDs) {
			rel = a.npIDs[want:]
		}
		if err := a.sess.Done(a.np, rel); err != nil {
			a.t.Errorf("done(np): %v", err)
			return
		}
		a.np, a.npN = next, want
		a.npIDs = nil

	case 2: // finish the allocation chain
		if a.np == 0 {
			return
		}
		_ = a.sess.Done(a.np, nil)
		if a.pa != 0 {
			_ = a.sess.Done(a.pa, nil)
		}
		a.pa, a.np, a.npIDs = 0, 0, nil

	case 3: // open a preemptible request
		if a.preempt != 0 {
			return
		}
		id, err := a.sess.Request(RequestSpec{Cluster: c0, N: 1 + a.rng.Intn(8),
			Duration: math.Inf(1), Type: request.Preempt})
		if err != nil {
			return
		}
		a.preempt = id

	case 4: // close the preemptible request
		if a.preempt == 0 {
			return
		}
		_ = a.sess.Done(a.preempt, nil)
		a.preempt = 0
		a.pIDs = nil

	case 5: // submit a standalone rigid request (implicit wrapping path)
		_, _ = a.sess.Request(RequestSpec{Cluster: c0, N: 1 + a.rng.Intn(4),
			Duration: 50 + a.rng.Float64()*100, Type: request.NonPreempt})
	}
}

// TestStressInvariants drives several chaotic-but-cooperative applications
// through thousands of random operations and asserts node-ID conservation
// at every step. The idPool's internal panics (double free, over-alloc)
// and the metrics monotonicity panic act as additional tripwires.
func TestStressInvariants(t *testing.T) {
	const capacity = 24
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		e, s := newTestServer(capacity)
		rng := rand.New(rand.NewSource(seed))

		apps := make([]*chaosApp, 4)
		for i := range apps {
			a := &chaosApp{t: t, rng: rand.New(rand.NewSource(seed*100 + int64(i))), e: e}
			a.sess = s.Connect(a)
			apps[i] = a
		}

		checkConservation := func() {
			held := 0
			for _, sess := range s.sessions {
				held += sess.held
			}
			free := s.pools[c0].available()
			// IDs parked on finished requests awaiting a NEXT hand-over
			// remain in the sessions' held accounting, so held + free
			// always covers the whole pool.
			if held+free != capacity {
				t.Fatalf("seed %d t=%.1f: node conservation violated: held %d + free %d != %d",
					seed, e.Now(), held, free, capacity)
			}
			if free < 0 || held < 0 {
				t.Fatalf("seed %d: negative pools", seed)
			}
		}

		for round := 0; round < 400; round++ {
			a := apps[rng.Intn(len(apps))]
			a.act()
			e.Run(e.Now() + rng.Float64()*10)
			checkConservation()
		}
		e.Run(e.Now() + 2000) // drain: everything finite expires
		checkConservation()
	}
}

// TestStressNoOverlappingNodeIDs verifies that at no point do two live
// allocations hold the same node ID.
func TestStressNoOverlappingNodeIDs(t *testing.T) {
	e, s := newTestServer(16)
	rng := rand.New(rand.NewSource(42))
	apps := make([]*chaosApp, 3)
	for i := range apps {
		a := &chaosApp{t: t, rng: rand.New(rand.NewSource(int64(900 + i))), e: e}
		a.sess = s.Connect(a)
		apps[i] = a
	}
	for round := 0; round < 300; round++ {
		apps[rng.Intn(len(apps))].act()
		e.Run(e.Now() + rng.Float64()*5)

		seen := map[int]request.ID{}
		for _, sess := range s.sessions {
			for _, r := range sess.app.Requests() {
				if !r.Started() || r.Finished {
					continue
				}
				for _, id := range r.NodeIDs {
					if other, dup := seen[id]; dup {
						t.Fatalf("t=%.1f: node %d held by requests %d and %d",
							e.Now(), id, other, r.ID)
					}
					seen[id] = r.ID
				}
			}
		}
	}
}
