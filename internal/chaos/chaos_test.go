package chaos

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/federation"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

func TestChaosPlanDeterministicAndWellFormed(t *testing.T) {
	cfg := Config{Seed: 7, MTTF: 500, MeanRestartDelay: 60, Horizon: 5000}
	a := Plan(cfg, 4)
	b := Plan(cfg, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce the same plan")
	}
	if len(a) == 0 {
		t.Fatal("expected some faults with MTTF << horizon")
	}
	// Different seed ⇒ different plan.
	cfg2 := cfg
	cfg2.Seed = 8
	if reflect.DeepEqual(a, Plan(cfg2, 4)) {
		t.Fatal("different seeds produced identical plans")
	}
	// Sorted by crash time; per-shard cycles never overlap; horizon holds.
	last := map[int]float64{}
	for i, f := range a {
		if i > 0 && a[i-1].CrashAt > f.CrashAt {
			t.Fatalf("plan not sorted at %d: %v then %v", i, a[i-1], f)
		}
		if f.CrashAt >= cfg.Horizon {
			t.Fatalf("fault beyond horizon: %v", f)
		}
		if f.RestartAt <= f.CrashAt {
			t.Fatalf("restart not after crash: %v", f)
		}
		if f.CrashAt < last[f.Shard] {
			t.Fatalf("shard %d faults overlap: crash %g before previous restart %g", f.Shard, f.CrashAt, last[f.Shard])
		}
		last[f.Shard] = f.RestartAt
	}
}

func TestChaosPlanPrefixStableAcrossShardCounts(t *testing.T) {
	cfg := Config{Seed: 3, MTTF: 400, MeanRestartDelay: 50, Horizon: 3000}
	small := Plan(cfg, 2)
	big := Plan(cfg, 4)
	onlySmallShards := func(fs []Fault) []Fault {
		var out []Fault
		for _, f := range fs {
			if f.Shard < 2 {
				out = append(out, f)
			}
		}
		return out
	}
	if !reflect.DeepEqual(small, onlySmallShards(big)) {
		t.Fatal("adding shards perturbed the existing shards' fault schedules")
	}
}

func TestChaosPlanCapsAndDegenerateConfigs(t *testing.T) {
	cfg := Config{Seed: 1, MTTF: 10, MeanRestartDelay: 1, Horizon: 10000, MaxFaultsPerShard: 3}
	perShard := map[int]int{}
	for _, f := range Plan(cfg, 2) {
		perShard[f.Shard]++
	}
	for shard, n := range perShard {
		if n > 3 {
			t.Errorf("shard %d has %d faults, cap is 3", shard, n)
		}
	}
	if Plan(Config{Seed: 1, MTTF: 0, Horizon: 100}, 2) != nil {
		t.Error("zero MTTF should disable the plan")
	}
	if Plan(Config{Seed: 1, MTTF: 10, Horizon: 0}, 2) != nil {
		t.Error("zero horizon should disable the plan")
	}
	if Plan(Config{Seed: 1, MTTF: 10, Horizon: 100}, 0) != nil {
		t.Error("zero shards should disable the plan")
	}
}

func TestChaosInjectorTraceAndInvariants(t *testing.T) {
	e := sim.NewEngine()
	fed := federation.New(federation.Config{
		Clusters:        map[view.ClusterID]int{"a": 4, "b": 4},
		Shards:          2,
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Recovery:        federation.KillOnCrash,
	})
	app := &inertHandler{}
	sess := fed.Connect(app)
	if _, err := sess.Request(rms.RequestSpec{Cluster: "a", N: 2, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	shard, _ := fed.Owner("a")
	in := NewInjector(e, fed, []Fault{{Shard: shard, CrashAt: 5, RestartAt: 9}})
	in.CheckAfterFault = true
	in.Arm()
	e.Run(20)
	if in.Crashes() != 1 || in.Restarts() != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", in.Crashes(), in.Restarts())
	}
	if err := in.InvariantErr(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
	tr := in.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace = %v, want 2 lines", tr)
	}
	if !strings.Contains(tr[0], "crash shard=0") || !strings.Contains(tr[0], "killed=[1]") {
		t.Errorf("crash line = %q", tr[0])
	}
	if !strings.Contains(tr[1], "restart shard=0") {
		t.Errorf("restart line = %q", tr[1])
	}
	if !app.killed {
		t.Error("session with live state on the crashed shard should be killed")
	}
	if err := fed.CheckInvariants(); err != nil {
		t.Fatalf("post-run invariants: %v", err)
	}
}

type inertHandler struct{ killed bool }

func (h *inertHandler) OnViews(_, _ view.View)    {}
func (h *inertHandler) OnStart(request.ID, []int) {}
func (h *inertHandler) OnKill(string)             { h.killed = true }
