package apps

import (
	"fmt"

	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Segment is one stage of a fully-predictably evolving application:
// n nodes for a given duration.
type Segment struct {
	N        int
	Duration float64
}

// PredictableEvolving is the fully-predictably evolving application of §4:
// it "sends several non-preemptible requests linked using the NEXT
// constraint. During its execution, if from one request to another the
// node-count decreases, it has to call done with the node IDs it chooses to
// free. Otherwise, if the node-count increases, the RMS sends it the new
// node IDs."
type PredictableEvolving struct {
	base

	Cluster  view.ClusterID
	Segments []Segment

	reqIDs  []request.ID
	started []bool
	held    []int

	// Starts records when each segment actually started.
	Starts []float64
}

// NewPredictableEvolving creates the application.
func NewPredictableEvolving(clk clock.Clock, cid view.ClusterID, segs []Segment) *PredictableEvolving {
	return &PredictableEvolving{
		base:     base{clk: clk},
		Cluster:  cid,
		Segments: segs,
		started:  make([]bool, len(segs)),
		Starts:   make([]float64, len(segs)),
	}
}

// Submit sends the whole NEXT chain up front — the application's evolution
// is known at start, so the RMS can plan for all of it.
func (p *PredictableEvolving) Submit() error {
	if len(p.Segments) == 0 {
		return fmt.Errorf("apps: no segments")
	}
	var prev request.ID
	for i, seg := range p.Segments {
		spec := rms.RequestSpec{
			Cluster: p.Cluster, N: seg.N, Duration: seg.Duration, Type: request.NonPreempt,
		}
		if i > 0 {
			spec.RelatedHow = request.Next
			spec.RelatedTo = prev
		}
		id, err := p.sess.Request(spec)
		if err != nil {
			return err
		}
		p.reqIDs = append(p.reqIDs, id)
		prev = id
	}
	return nil
}

// OnViews is a no-op: the evolution was exported to the RMS at submit time.
func (p *PredictableEvolving) OnViews(_, _ view.View) {}

// OnStart tracks segment starts and, before a shrinking transition, calls
// done with the node IDs the application chooses to free.
func (p *PredictableEvolving) OnStart(id request.ID, nodeIDs []int) {
	for i, rid := range p.reqIDs {
		if rid != id {
			continue
		}
		p.started[i] = true
		p.Starts[i] = p.now()
		p.held = nodeIDs
		if i+1 < len(p.Segments) && p.Segments[i+1].N < p.Segments[i].N {
			// Shrinking transition: release the chosen IDs exactly at the
			// end of this segment.
			release := p.Segments[i].N - p.Segments[i+1].N
			segIdx := i
			p.clk.AfterFunc(p.Segments[i].Duration, "evolving.shrink", func() {
				_ = p.sess.Done(p.reqIDs[segIdx], lastN(p.held, release))
			})
		}
		return
	}
}

// SegmentStarted reports whether segment i has started.
func (p *PredictableEvolving) SegmentStarted(i int) bool {
	return i < len(p.started) && p.started[i]
}

// Held returns the node IDs currently allocated.
func (p *PredictableEvolving) Held() []int { return p.held }
