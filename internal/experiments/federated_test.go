package experiments

import (
	"reflect"
	"testing"

	"coormv2/internal/apps"
	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

func federatedTestJobs() []workload.Job {
	return workload.Synthetic(stats.NewRand(11), workload.SyntheticConfig{
		Jobs: 60, MaxNodes: 12, MeanInterArr: 90, MeanRuntime: 600,
		PowerOfTwoBias: 0.5,
	})
}

func TestFederatedReplayCompletes(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		res, err := RunFederatedReplay(FederatedReplayConfig{
			Jobs:          federatedTestJobs(),
			Shards:        shards,
			NodesPerShard: 16,
			PSATaskDur:    120,
			Evolving:      []apps.Segment{{N: 4, Duration: 300}, {N: 8, Duration: 300}, {N: 2, Duration: 300}},
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Completed != 60 {
			t.Errorf("shards=%d: completed %d jobs, want 60", shards, res.Completed)
		}
		if res.Shards != shards || res.Nodes != shards*16 {
			t.Errorf("shards=%d: result sizing %+v", shards, res)
		}
		if res.Makespan <= 0 || res.RigidUtilization <= 0 {
			t.Errorf("shards=%d: degenerate result %+v", shards, res)
		}
		// The PSAs scavenge idle nodes, so used resources must exceed the
		// rigid jobs alone.
		if res.UsedFraction <= res.RigidUtilization {
			t.Errorf("shards=%d: used fraction %v not above rigid utilization %v",
				shards, res.UsedFraction, res.RigidUtilization)
		}
		if len(res.ShardRigidArea) != shards {
			t.Errorf("shards=%d: per-shard areas %v", shards, res.ShardRigidArea)
		}
	}
}

func TestFederatedReplayDeterminism(t *testing.T) {
	cfg := FederatedReplayConfig{
		Jobs:          federatedTestJobs(),
		Shards:        3,
		NodesPerShard: 16,
		PSATaskDur:    60,
		Evolving:      []apps.Segment{{N: 3, Duration: 200}, {N: 6, Duration: 200}},
	}
	a, err := RunFederatedReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFederatedReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical federated runs diverge:\n%+v\n%+v", a, b)
	}
}

func TestFederatedReplayRejectsBadConfig(t *testing.T) {
	if _, err := RunFederatedReplay(FederatedReplayConfig{Shards: 2, NodesPerShard: 8}); err == nil {
		t.Error("empty job stream should error")
	}
	if _, err := RunFederatedReplay(FederatedReplayConfig{
		Jobs: federatedTestJobs(), Shards: 2,
	}); err == nil {
		t.Error("missing node count should error")
	}
}
