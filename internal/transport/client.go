package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coormv2/internal/obs"
	"coormv2/internal/proto"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Handler receives asynchronous RMS notifications on the client side.
// It is the client-side twin of rms.AppHandler.
type Handler interface {
	OnViews(nonPreempt, preempt view.View)
	OnStart(id request.ID, nodeIDs []int)
	OnKill(reason string)
}

// ErrorHandler is an optional Handler extension: handlers implementing it
// are told about unsolicited server errors — error frames with no sequence
// number, which correlate with no pending call (e.g. a frame the server
// could not parse, or an oversized-frame report). Without it such errors
// are only counted (UnsolicitedErrors) instead of being dropped silently.
type ErrorHandler interface {
	OnError(reason string)
}

// ResumeRejectedError reports that the server refused to resume the
// session (the grace window expired, or the server restarted). The client
// is permanently down: pending calls fail and OnKill is delivered.
type ResumeRejectedError struct{ Reason string }

func (e *ResumeRejectedError) Error() string {
	return fmt.Sprintf("transport: resume rejected: %s", e.Reason)
}

// errSessionKilled terminates the read loop after a kill frame.
var errSessionKilled = errors.New("transport: session killed")

// callResult is the outcome delivered to a waiting call: the server's
// ack/error frame, or a connection-level error.
type callResult struct {
	m   *proto.Message
	err error
}

// pendingCall is one in-flight synchronous call. The full frame is
// retained so a reconnect can re-send it verbatim (same Seq, same Idem —
// the server deduplicates on Idem).
type pendingCall struct {
	m  proto.Message
	ch chan callResult // buffered 1; receives exactly one result
}

// Client is a CooRMv2 application endpoint speaking the TCP protocol.
// Request and Done are synchronous (they wait for the server's ack);
// notifications are dispatched to the Handler from a reader goroutine.
//
// With Options.Reconnect the client survives connection death: it
// re-dials with exponential backoff + jitter, presents its resume token,
// and the server re-attaches the session — in-flight calls are re-sent
// and deduplicated via idempotency tokens, and current views/starts are
// replayed (replayed starts the client already saw are suppressed).
type Client struct {
	addr string
	h    Handler
	o    Options

	// wmu serializes frame writes; conn/w swap on reconnect.
	wmu sync.Mutex
	w   *bufio.Writer

	mu         sync.Mutex
	conn       net.Conn // current connection (for force-close); nil while down
	up         bool
	closed     bool
	killed     bool
	appID      int
	token      string
	nextSeq    int64
	nextIdem   int64
	waiters    map[int64]*pendingCall
	started    map[int64]bool // request IDs whose start was delivered
	reconnects int
	termErr    error // set under mu before failing waiters; rejects new calls
	rng        *rand.Rand

	lastRx      atomic.Int64 // unix nanos of the last received frame
	unsolicited atomic.Int64

	stop    chan struct{} // closed by Close: interrupts backoff sleeps
	dead    chan struct{} // closed when the client is permanently down
	runDone chan struct{}

	// notif decouples handler dispatch from the read loop so handlers can
	// synchronously call Request/Done (the in-process server gives the
	// same guarantee by notifying outside its lock).
	notif        chan func()
	dispatchDone chan struct{}

	hReconnect *obs.Histogram
}

// Dial connects to a CooRMv2 daemon and performs the connect handshake
// with default options: no heartbeats, no reconnection, no call deadline.
func Dial(addr string, h Handler) (*Client, error) {
	return DialOptions(addr, h, Options{})
}

// DialOptions connects with explicit resilience options.
func DialOptions(addr string, h Handler, o Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	seed := o.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		addr:         addr,
		h:            h,
		o:            o,
		waiters:      make(map[int64]*pendingCall),
		started:      make(map[int64]bool),
		rng:          rand.New(rand.NewSource(seed)),
		stop:         make(chan struct{}),
		dead:         make(chan struct{}),
		runDone:      make(chan struct{}),
		notif:        make(chan func(), 1024),
		dispatchDone: make(chan struct{}),
		nextSeq:      1,
		nextIdem:     1,
		hReconnect:   o.Obs.Hist("transport.reconnect_seconds"),
	}
	fr := newFrameReader(conn, o.MaxFrame)
	m, err := c.handshake(conn, fr, proto.Message{Type: proto.MsgConnect, Tenant: o.Tenant})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.appID = m.AppID
	c.token = m.Resume
	c.attach(conn)
	go c.dispatchLoop()
	go c.run(conn, fr)
	if o.HeartbeatInterval > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// handshake writes the connect frame and reads the server's verdict, all
// under a deadline so a dead or half-open server cannot wedge the dial.
func (c *Client) handshake(conn net.Conn, fr *frameReader, m proto.Message) (*proto.Message, error) {
	data, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(DefaultHandshakeWait))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write(append(data, '\n')); err != nil {
		return nil, fmt.Errorf("transport: handshake write: %w", err)
	}
	line, err := fr.next()
	if err != nil {
		return nil, fmt.Errorf("transport: connection closed during handshake: %w", err)
	}
	reply, err := proto.Unmarshal(line)
	if err != nil {
		return nil, err
	}
	switch reply.Type {
	case proto.MsgConnected:
		c.lastRx.Store(time.Now().UnixNano())
		return reply, nil
	case proto.MsgKill, proto.MsgError:
		if m.Resume != "" {
			return nil, &ResumeRejectedError{Reason: reply.Reason}
		}
		return nil, fmt.Errorf("transport: connect rejected: %s", reply.Reason)
	default:
		return nil, fmt.Errorf("transport: handshake got %q", reply.Type)
	}
}

// attach installs a live connection (initial dial or reconnect).
func (c *Client) attach(conn net.Conn) {
	c.wmu.Lock()
	c.w = bufio.NewWriter(conn)
	c.wmu.Unlock()
	c.mu.Lock()
	c.conn = conn
	c.up = true
	c.mu.Unlock()
}

// detach marks the connection down; pending calls stay parked for a
// reconnect (or fail when the client goes permanently down).
func (c *Client) detach() {
	c.wmu.Lock()
	c.w = nil
	c.wmu.Unlock()
	c.mu.Lock()
	c.conn = nil
	c.up = false
	c.mu.Unlock()
}

// dispatchLoop delivers notifications in order, off the read goroutine.
func (c *Client) dispatchLoop() {
	defer close(c.dispatchDone)
	for fn := range c.notif {
		fn()
	}
}

// AppID returns the RMS-assigned application ID.
func (c *Client) AppID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appID
}

// Dead returns a channel that is closed when the client is permanently
// down: closed, killed, or past its reconnect window. Drivers that manage
// their own re-dial (instead of Options.Reconnect) watch it.
func (c *Client) Dead() <-chan struct{} { return c.dead }

// Reconnects returns how many times the client re-attached its session.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// UnsolicitedErrors returns how many unsolicited server errors (error
// frames with no sequence number) the client has received.
func (c *Client) UnsolicitedErrors() int64 { return c.unsolicited.Load() }

func (c *Client) send(m proto.Message) error {
	data, err := m.Marshal()
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.w == nil {
		return errors.New("transport: not connected")
	}
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("transport: write: %w", err)
	}
	return c.w.Flush()
}

// call sends m with a fresh sequence number and idempotency token and
// waits for the matching ack or error frame, surviving reconnects and
// honoring the per-call deadline.
func (c *Client) call(m proto.Message) (*proto.Message, error) {
	c.mu.Lock()
	if err := c.downErrLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	seq := c.nextSeq
	c.nextSeq++
	m.Seq = seq
	m.Idem = c.nextIdem
	c.nextIdem++
	pc := &pendingCall{m: m, ch: make(chan callResult, 1)}
	c.waiters[seq] = pc
	sendNow := c.up
	c.mu.Unlock()

	if sendNow {
		if err := c.send(m); err != nil && !c.o.Reconnect {
			// Without reconnection a failed write is final for this call;
			// the read loop will notice the dead connection independently.
			c.mu.Lock()
			delete(c.waiters, seq)
			c.mu.Unlock()
			return nil, err
		}
	}

	var deadline <-chan time.Time
	if c.o.CallTimeout > 0 {
		t := time.NewTimer(c.o.CallTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case res := <-pc.ch:
		if res.err != nil {
			return nil, res.err
		}
		if res.m.Type == proto.MsgError {
			return nil, fmt.Errorf("rms: %s", res.m.Reason)
		}
		return res.m, nil
	case <-deadline:
		c.mu.Lock()
		delete(c.waiters, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (%s after %s)", ErrCallTimeout, m.Type, c.o.CallTimeout)
	}
}

// downErrLocked returns the terminal error when the client can no longer
// carry calls.
func (c *Client) downErrLocked() error {
	switch {
	case c.closed:
		return errors.New("transport: client closed")
	case c.killed:
		return errSessionKilled
	default:
		return c.termErr
	}
}

// Request sends the request() operation and returns the RMS-assigned ID.
func (c *Client) Request(spec rms.RequestSpec) (request.ID, error) {
	reply, err := c.call(proto.EncodeRequestSpec(spec, 0))
	if err != nil {
		return 0, err
	}
	return request.ID(reply.ReqID), nil
}

// Done sends the done() operation.
func (c *Client) Done(id request.ID, released []int) error {
	_, err := c.call(proto.Message{Type: proto.MsgDone, ReqID: int64(id), Released: released})
	if err == nil {
		// The request is over; its start can never be replayed again.
		c.mu.Lock()
		delete(c.started, int64(id))
		c.mu.Unlock()
	}
	return err
}

// Close disconnects cleanly and waits for both pumps to drain.
func (c *Client) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
	}
	c.mu.Unlock()
	_ = c.send(proto.Message{Type: proto.MsgBye})
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-c.runDone
	<-c.dispatchDone
	return nil
}

// run owns the read side across the client's whole life: it pumps one
// connection until it dies, then either reconnects (resuming the session)
// or goes permanently down, failing every pending call.
func (c *Client) run(conn net.Conn, fr *frameReader) {
	defer close(c.runDone)
	for {
		err := c.readLoop(fr)
		conn.Close()
		c.detach()

		c.mu.Lock()
		if c.closed || c.killed || !c.o.Reconnect {
			switch {
			case c.killed:
				err = errSessionKilled
			case c.closed:
				err = errors.New("transport: client closed")
			case err == nil:
				err = errors.New("transport: connection closed")
			}
			c.failAllLocked(err)
			c.mu.Unlock()
			c.finish()
			return
		}
		c.mu.Unlock()

		nconn, nfr, rerr := c.reconnect(err)
		if rerr != nil {
			var rr *ResumeRejectedError
			rejected := errors.As(rerr, &rr)
			c.mu.Lock()
			if rejected {
				c.killed = true
			}
			c.failAllLocked(rerr)
			c.mu.Unlock()
			if rejected {
				reason := rr.Reason
				c.notif <- func() { c.h.OnKill(reason) }
			}
			c.finish()
			return
		}
		conn, fr = nconn, nfr
	}
}

// finish marks the client permanently down and drains the dispatcher.
func (c *Client) finish() {
	close(c.dead)
	close(c.notif)
}

// failAllLocked delivers err to every pending call and rejects future
// calls with it. Idempotent: the waiter map is emptied and the first
// terminal error wins.
func (c *Client) failAllLocked(err error) {
	if c.termErr == nil {
		c.termErr = err
	}
	for seq, pc := range c.waiters {
		pc.ch <- callResult{err: err}
		delete(c.waiters, seq)
	}
}

// reconnect re-dials with exponential backoff + jitter until the session
// is resumed, the window expires, or the server rejects the resume.
func (c *Client) reconnect(cause error) (net.Conn, *frameReader, error) {
	start := time.Now()
	window := c.o.reconnectWindow()
	c.o.Obs.Event(obs.Event{Type: obs.EvConnDrop, App: c.appID})
	for attempt := 0; ; attempt++ {
		// Backoff with jitter in [0.5, 1.0)·min(base·2ⁿ, max).
		d := c.o.backoffBase() << uint(attempt)
		if d <= 0 || d > c.o.backoffMax() {
			d = c.o.backoffMax()
		}
		c.mu.Lock()
		d = time.Duration(float64(d) * (0.5 + 0.5*c.rng.Float64()))
		c.mu.Unlock()
		select {
		case <-c.stop:
			return nil, nil, errors.New("transport: client closed")
		case <-time.After(d):
		}
		remaining := window - time.Since(start)
		if remaining <= 0 {
			return nil, nil, fmt.Errorf("transport: reconnect window (%s) expired: %w", window, cause)
		}

		dialWait := DefaultHandshakeWait
		if remaining < dialWait {
			dialWait = remaining
		}
		conn, err := net.DialTimeout("tcp", c.addr, dialWait)
		if err != nil {
			continue
		}
		fr := newFrameReader(conn, c.o.MaxFrame)
		c.mu.Lock()
		token := c.token
		c.mu.Unlock()
		reply, err := c.handshake(conn, fr, proto.Message{Type: proto.MsgConnect, Resume: token, Tenant: c.o.Tenant})
		if err != nil {
			conn.Close()
			var rr *ResumeRejectedError
			if errors.As(err, &rr) {
				return nil, nil, err
			}
			continue
		}

		outage := time.Since(start)
		c.attach(conn)
		c.mu.Lock()
		if reply.Resume != "" {
			c.token = reply.Resume
		}
		c.reconnects++
		pend := make([]proto.Message, 0, len(c.waiters))
		for _, pc := range c.waiters {
			pend = append(pend, pc.m)
		}
		c.mu.Unlock()
		// Re-send in-flight calls in seq order; the server deduplicates
		// re-executions via their idempotency tokens. A send failure here
		// means the fresh connection died already — the new read loop
		// notices and the next round retries.
		sort.Slice(pend, func(i, j int) bool { return pend[i].Seq < pend[j].Seq })
		for _, m := range pend {
			if err := c.send(m); err != nil {
				break
			}
		}
		c.hReconnect.Record(outage.Seconds())
		c.o.Obs.Event(obs.Event{Type: obs.EvResume, App: c.appID, Value: outage.Seconds()})
		return conn, fr, nil
	}
}

// heartbeatLoop probes liveness: a ping every interval, and a forced
// connection teardown (feeding the reconnect path) when nothing has been
// received for HeartbeatMiss intervals.
func (c *Client) heartbeatLoop() {
	t := time.NewTicker(c.o.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.dead:
			return
		case <-t.C:
		}
		c.mu.Lock()
		conn, up := c.conn, c.up
		c.mu.Unlock()
		if !up || conn == nil {
			continue
		}
		if time.Since(time.Unix(0, c.lastRx.Load())) > c.o.heartbeatDeadline() {
			// Silent for too long: declare the connection dead. Closing it
			// unblocks the read loop, which reconnects (or fails).
			conn.Close()
			continue
		}
		_ = c.send(proto.Message{Type: proto.MsgPing})
	}
}

// readLoop pumps one connection until it dies or the session ends.
func (c *Client) readLoop(fr *frameReader) error {
	for {
		line, err := fr.next()
		if err != nil {
			// An oversized server frame is connection-fatal for the client
			// (a dropped ack would wedge its call); the resume path
			// re-syncs all state on a fresh connection.
			return err
		}
		c.lastRx.Store(time.Now().UnixNano())
		m, err := proto.Unmarshal(line)
		if err != nil {
			return err
		}
		switch m.Type {
		case proto.MsgPong:
			// Liveness already noted via lastRx.
		case proto.MsgPing:
			_ = c.send(proto.Message{Type: proto.MsgPong, Seq: m.Seq})
		case proto.MsgReqAck, proto.MsgError:
			if m.Seq == 0 {
				c.unsolicited.Add(1)
				if eh, ok := c.h.(ErrorHandler); ok {
					reason := m.Reason
					c.notif <- func() { eh.OnError(reason) }
				}
				continue
			}
			c.mu.Lock()
			pc := c.waiters[m.Seq]
			delete(c.waiters, m.Seq)
			c.mu.Unlock()
			if pc != nil {
				pc.ch <- callResult{m: m}
			}
		case proto.MsgViews:
			np, err1 := m.NonPreemptView.DecodeView()
			p, err2 := m.PreemptView.DecodeView()
			if err1 != nil || err2 != nil {
				return errors.Join(err1, err2)
			}
			c.notif <- func() { c.h.OnViews(np, p) }
		case proto.MsgStart:
			c.mu.Lock()
			dup := m.Replay && c.started[m.ReqID]
			if !dup {
				c.started[m.ReqID] = true
			}
			c.mu.Unlock()
			if dup {
				continue // start already delivered before the reconnect
			}
			id, ids := request.ID(m.ReqID), m.NodeIDs
			c.notif <- func() { c.h.OnStart(id, ids) }
		case proto.MsgKill:
			c.mu.Lock()
			c.killed = true
			c.failAllLocked(errSessionKilled)
			c.mu.Unlock()
			reason := m.Reason
			c.notif <- func() { c.h.OnKill(reason) }
			return errSessionKilled
		}
	}
}
