// Package rms implements the CooRMv2 Resource Management System process
// around the pure scheduler of internal/core: application sessions, the
// request()/done() operations (§3.1.3), view pushing, node-ID allocation,
// the re-scheduling interval coalescing of §3.2, and the protocol-violation
// kill of §3.1.4 ("if a protocol violation is detected, the RMS kills the
// application's processes and terminates the session").
//
// The server is clock-agnostic: driven by clock.SimClock it is the paper's
// discrete-event simulator; driven by clock.RealClock behind a TCP
// transport it is the real-life prototype RMS.
package rms

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/view"
)

// AppHandler receives RMS→application notifications. Implementations must
// not block; they may call back into the Session (the server never holds
// its lock while notifying).
type AppHandler interface {
	// OnViews delivers fresh non-preemptive and preemptive views (§3.1.4).
	// Delivered views are immutable and may be shared between sessions:
	// handlers may retain them indefinitely but must never modify them.
	OnViews(nonPreempt, preempt view.View)
	// OnStart notifies that a request started and delivers its node IDs
	// (empty for pre-allocations).
	OnStart(id request.ID, nodeIDs []int)
	// OnKill notifies that the RMS terminated the session.
	OnKill(reason string)
}

// RequestObserver is an optional AppHandler extension for ID-routing layers
// (internal/federation). Handlers that implement it are additionally told
// when a request finishes (done() or duration expiry) and when finished
// requests are garbage-collected — i.e. can no longer be referenced by
// done() or a NEXT/COALLOC relation — so per-session routing tables can be
// pruned in lockstep with the server's own bookkeeping. Like every other
// handler callback, notifications are delivered without the server lock
// held, in deterministic (session-ID, then request-ID) order.
type RequestObserver interface {
	// OnRequestFinished reports that the request's allocation is over.
	// The request may still be referenced by a pending NEXT child.
	OnRequestFinished(id request.ID)
	// OnRequestsReaped reports that the requests were garbage-collected
	// and can no longer be referenced at all. IDs are in ascending order.
	OnRequestsReaped(ids []request.ID)
}

// RequestSpec is the application-provided part of a request (§A.1).
type RequestSpec struct {
	Cluster    view.ClusterID
	N          int
	Duration   float64 // seconds; math.Inf(1) for open-ended requests
	Type       request.Type
	RelatedHow request.Relation
	RelatedTo  request.ID // ignored when RelatedHow == Free
}

// Config parametrizes a Server.
type Config struct {
	// Clusters maps cluster IDs to node counts.
	Clusters map[view.ClusterID]int
	// ReschedInterval is the §3.2 re-scheduling interval: the scheduling
	// algorithm runs at most once per interval. The evaluation uses 1 s.
	ReschedInterval float64
	// Clock drives time; use clock.SimClock for simulations.
	Clock clock.Clock
	// Policy selects the preemptible division policy (default: filling).
	Policy core.PreemptPolicy
	// GracePeriod is how long an application may hold more preemptible
	// resources than granted before it is killed. Zero selects the default
	// of 5 re-scheduling intervals.
	GracePeriod float64
	// Clip optionally limits every application's non-preemptive view.
	Clip view.View
	// Metrics, when non-nil, receives allocation updates.
	Metrics *metrics.Recorder
	// FullRecompute disables the scheduler's incremental recomputation, so
	// every round recomputes everything from scratch. The differential
	// tests pin the two modes byte-identical; production leaves it off.
	FullRecompute bool
	// NodeRecovery selects what happens to started non-preemptible requests
	// whose nodes die (FailNodes). The zero value is KillOnNodeFailure,
	// matching the shard-crash default (kill is the paper's §3.1.4
	// behaviour; requeue and cooperative are the reproduction's extensions).
	NodeRecovery NodeRecoveryPolicy
	// Obs, when non-nil, receives latency histograms and structured events
	// (internal/obs): round duration and per-round recomputed artifacts,
	// request admit→start waits, and done→reap lag. Recording stays out of
	// the allocation-lean round when nil.
	Obs *obs.Registry
	// ObsLabel prefixes this server's metric names and stamps its events
	// (e.g. "shard0") so federated shards share one registry without
	// colliding. Empty for a standalone RMS.
	ObsLabel string
	// Scheduling installs an application ordering/admission policy on the
	// scheduler (nil keeps the default connection-order FIFO, whose rounds
	// are byte-identical to the pre-policy scheduler). When the policy
	// also implements core.VictimNominator — internal/tenants' DRF does —
	// the server enforces quota preemption after every round: nominated
	// started preemptible allocations are terminated and their nodes
	// reclaimed for the starved queue.
	Scheduling core.SchedulingPolicy
	// PoolDebugPanics turns node-ID pool accounting violations into
	// panics at construction (fail-stop debugging). The underlying switch
	// is process-global — it stays on for every pool once some server set
	// it — which is acceptable for its debug-only purpose.
	PoolDebugPanics bool
}

// Server is a CooRMv2 RMS instance.
type Server struct {
	mu    sync.Mutex
	cfg   Config
	sched *core.Scheduler
	clk   clock.Clock

	sessions map[int]*Session
	nextApp  int
	nextReq  request.ID

	pools map[view.ClusterID]*idPool

	// churn counts accepted request() operations per cluster — the per-cluster
	// load signal behind federation.Rebalancer donor selection. A cluster's
	// counter migrates with it (DetachCluster/AttachCluster) so deltas stay
	// meaningful across shards.
	churn map[view.ClusterID]int64

	schedPending bool
	schedTimer   clock.Timer
	wakeTimer    clock.Timer
	lastRunAt    float64
	ranOnce      bool

	lastViews map[int][2]view.View

	// deficitSince tracks, per app, since when it holds more preemptible
	// nodes than granted (kill after GracePeriod).
	deficitSince map[int]float64

	// notifications queued during a locked section, delivered unlocked.
	pending []func()

	// idScratch is the sorted session-ID list reused by sessionIDsLocked;
	// idsOK marks it current (connect/teardown invalidate it). Per-round
	// loops call sessionIDsLocked several times over an unchanged session
	// set, so the collect-and-sort runs only when membership changed.
	idScratch []int
	idsOK     bool

	// trimMemo memoizes per-round view trims by map identity (see
	// pushViewsLocked); cleared at the start of every push pass.
	trimMemo map[uintptr]view.View

	// loadEpoch counts load-relevant mutations (accepted requests, starts,
	// finishes, frees, cluster attach/detach, restarts). A rebalancer can
	// compare epochs across checks and skip its scoring pass when nothing
	// moved anywhere (see federation.Rebalancer).
	loadEpoch int64

	// stopped marks a crashed server (Stop): all state is gone and every
	// operation fails until Reset.
	stopped bool

	// Observability (nil when Config.Obs is nil). Histogram pointers are
	// cached at construction so hot paths record through one nil check and
	// zero map lookups; obsPrevRecomputed turns the scheduler's cumulative
	// artifact counter into a per-round dirty count.
	obs               *obs.Registry
	obsLabel          string
	obsPrefix         string
	hRound            *obs.Histogram
	hDirty            *obs.Histogram
	hWait             *obs.Histogram
	hReap             *obs.Histogram
	obsPrevRecomputed int64

	// hTenantWait lazily holds per-tenant admit→start wait histograms
	// ("<prefix>tenant.<label>.wait_seconds"), populated only when a
	// scheduling policy is configured — the default FIFO path never
	// touches the map.
	hTenantWait map[string]*obs.Histogram

	// Quota preemption (Config.Scheduling implementing
	// core.VictimNominator): the cached nominator, the reusable victim
	// buffer, and the cumulative revocation count per tenant label.
	victims        core.VictimNominator
	victimBuf      []*request.Request
	tenantPreempts map[string]int64

	// gcCollect is the persistent reap callback for gcRequestsLocked with
	// its per-call state (gcNow/gcObserve/gcReaped scratch): allocating a
	// fresh closure per session per round would show up in the steady
	// cached round's allocation budget.
	gcCollect func(*request.Request)
	gcNow     float64
	gcObserve bool
	gcReaped  []request.ID
}

// NewServer creates an RMS server. It panics on an invalid configuration.
func NewServer(cfg Config) *Server {
	if cfg.Clock == nil {
		panic("rms: Config.Clock is required")
	}
	if len(cfg.Clusters) == 0 {
		panic("rms: at least one cluster is required")
	}
	if cfg.ReschedInterval <= 0 {
		cfg.ReschedInterval = 1
	}
	if cfg.GracePeriod <= 0 {
		cfg.GracePeriod = 5 * cfg.ReschedInterval
	}
	if cfg.PoolDebugPanics {
		SetPoolDebugPanics(true)
	}
	s := &Server{cfg: cfg, clk: cfg.Clock, tenantPreempts: make(map[string]int64)}
	s.initObs()
	s.initStateLocked()
	return s
}

// initObs caches the server's observability hooks. Histogram names carry
// the shard label so a federation's shards share one registry; the sched
// counter source reads SchedStats under the server lock (snapshots are
// never taken while holding it).
func (s *Server) initObs() {
	if s.cfg.Obs == nil {
		return
	}
	s.obs = s.cfg.Obs
	s.obsLabel = s.cfg.ObsLabel
	prefix := ""
	if s.obsLabel != "" {
		prefix = s.obsLabel + "."
	}
	s.obsPrefix = prefix
	s.hRound = s.obs.Hist(prefix + "rms.round_seconds")
	s.hDirty = s.obs.Hist(prefix + "rms.round_dirty_artifacts")
	s.hWait = s.obs.Hist(prefix + "rms.wait_seconds")
	s.hReap = s.obs.Hist(prefix + "rms.reap_lag_seconds")
	s.obs.RegisterCounters(prefix+"sched", func() map[string]int64 {
		return s.SchedStats().Map()
	})
	if s.cfg.Scheduling != nil {
		s.obs.RegisterCounters(prefix+"tenants", func() map[string]int64 {
			snap := s.TenantPreempts()
			out := make(map[string]int64, len(snap))
			for label, n := range snap {
				out["preempted."+label] = n
			}
			return out
		})
	}
}

// tenantWaitHistLocked returns (creating on first use) the per-tenant
// admit→start wait histogram for a tenant label. Callers guarantee
// s.obs != nil.
func (s *Server) tenantWaitHistLocked(key string) *obs.Histogram {
	h := s.hTenantWait[key]
	if h == nil {
		if s.hTenantWait == nil {
			s.hTenantWait = make(map[string]*obs.Histogram)
		}
		h = s.obs.Hist(s.obsPrefix + "tenant." + key + ".wait_seconds")
		s.hTenantWait[key] = h
	}
	return h
}

// initStateLocked (re)builds the server's mutable scheduling state from the
// configuration: a fresh scheduler, empty session tables, full node-ID
// pools, and restarted ID sequences. Shared by NewServer and Reset so a
// restarted shard cannot silently diverge from a freshly constructed one.
func (s *Server) initStateLocked() {
	s.sched = core.NewScheduler(s.cfg.Clusters)
	s.sched.SetIncremental(!s.cfg.FullRecompute)
	s.sched.SetPolicy(s.cfg.Policy)
	if s.cfg.Clip != nil {
		s.sched.SetClip(s.cfg.Clip)
	}
	if s.cfg.Scheduling != nil {
		s.sched.SetSchedulingPolicy(s.cfg.Scheduling)
	}
	s.victims, _ = s.cfg.Scheduling.(core.VictimNominator)
	s.sessions = make(map[int]*Session)
	s.idsOK = false
	s.lastViews = make(map[int][2]view.View)
	s.deficitSince = make(map[int]float64)
	s.pools = make(map[view.ClusterID]*idPool, len(s.cfg.Clusters))
	s.churn = make(map[view.ClusterID]int64, len(s.cfg.Clusters))
	for cid, n := range s.cfg.Clusters {
		s.pools[cid] = newIDPool(n)
	}
	s.nextApp = 1
	s.nextReq = 1
	s.lastRunAt = math.Inf(-1)
	s.ranOnce = false
	s.obsPrevRecomputed = 0 // fresh scheduler: cumulative counters restart
}

// Session is one application's connection to the RMS.
type Session struct {
	s      *Server
	app    *core.AppState
	h      AppHandler
	killed bool
	held   int // total node IDs currently held, for metrics
}

// AppID returns the RMS-assigned application ID.
func (sess *Session) AppID() int { return sess.app.ID }

// Connect registers an application and returns its session. The first view
// push happens on the next scheduling round. Connect panics on a stopped
// server; routing layers use ConnectID, which reports the condition as an
// error instead. Options tag the session — WithTenant assigns it a
// tenant queue.
func (s *Server) Connect(h AppHandler, opts ...ConnectOption) *Session {
	var o connectOpts
	for _, opt := range opts {
		opt(&o)
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic("rms: Connect on a stopped server")
	}
	sess := s.connectLocked(h, s.nextApp, o)
	s.mu.Unlock()
	s.flush()
	return sess
}

// ConnectID registers an application under a caller-chosen ID. It is the
// session-routing hook used by internal/federation, where one front-end
// assigns globally unique application IDs and every shard registers the
// session under the same ID (so per-shard metrics aggregate by ID). It
// errors if the ID is non-positive or already connected.
func (s *Server) ConnectID(h AppHandler, id int, opts ...ConnectOption) (*Session, error) {
	if id <= 0 {
		return nil, fmt.Errorf("rms: application ID %d must be positive", id)
	}
	var o connectOpts
	for _, opt := range opts {
		opt(&o)
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	if _, taken := s.sessions[id]; taken {
		s.mu.Unlock()
		return nil, fmt.Errorf("rms: application ID %d already connected", id)
	}
	sess := s.connectLocked(h, id, o)
	s.mu.Unlock()
	s.flush()
	return sess, nil
}

// connectLocked registers a session under id and keeps the auto-assigned
// sequence ahead of every externally chosen ID.
func (s *Server) connectLocked(h AppHandler, id int, o connectOpts) *Session {
	if id >= s.nextApp {
		s.nextApp = id + 1
	}
	app := s.sched.AddApp(id, s.clk.Now())
	app.Tenant = o.tenant
	sess := &Session{s: s, app: app, h: h}
	s.sessions[id] = sess
	s.idsOK = false
	s.requestRunLocked()
	return sess
}

// Scheduler exposes the underlying scheduler for inspection (tests,
// experiment harness). Mutating it directly is not supported.
func (s *Server) Scheduler() *core.Scheduler { return s.sched }

// SchedStats returns the scheduler's cumulative incremental-recomputation
// counters (cache hits and misses per artifact kind).
func (s *Server) SchedStats() core.SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.Stats()
}

// LoadEpoch returns the server's load-mutation epoch: it advances on every
// mutation that could change ClusterLoads (accepted requests, starts,
// finishes, node-ID frees, cluster attach/detach, restart). Equal epochs
// across two observations guarantee an unchanged load picture. A stopped
// server reports -1.
func (s *Server) LoadEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return -1
	}
	return s.loadEpoch
}

// touchLocked records a request-state mutation of one application: the
// scheduler recomputes the app's cached artifacts next round, and the load
// epoch advances. Every RMS mutation path funnels through this (missing a
// mark would make cached rounds stale — the incremental≡full differential
// tests guard it).
func (s *Server) touchLocked(appID int) {
	s.sched.MarkAppDirty(appID)
	s.loadEpoch++
}

// Stop simulates a crash: the scheduler-side state of every session is
// dropped without notification (the process died — there are no goodbye
// messages; a routing layer such as internal/federation decides what the
// applications are told), pending timers and notifications are cancelled,
// and every subsequent operation fails until Reset. Metrics integrals are
// closed out at the crash instant so no allocation keeps accruing area for
// a dead shard. Stop is idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	now := s.clk.Now()
	for _, id := range s.sessionIDsLocked() {
		sess := s.sessions[id]
		sess.killed = true
		sess.held = 0
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.SetAlloc(id, now, 0)
			s.cfg.Metrics.SetPreAlloc(id, now, 0)
		}
	}
	s.sessions = make(map[int]*Session)
	s.idsOK = false
	s.lastViews = make(map[int][2]view.View)
	s.deficitSince = make(map[int]float64)
	if s.schedTimer != nil {
		s.schedTimer.Stop()
		s.schedTimer = nil
	}
	if s.wakeTimer != nil {
		s.wakeTimer.Stop()
		s.wakeTimer = nil
	}
	s.schedPending = false
	s.pending = nil
	s.mu.Unlock()
}

// Stopped reports whether the server is stopped (crashed and not yet Reset).
func (s *Server) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Reset restarts a stopped server with completely empty state — a fresh
// scheduler, full node-ID pools, and restarted ID sequences — modelling a
// shard process that rejoins after a crash with no recollection of its
// previous life. The configuration (clusters, policy, clip, metrics
// recorder) is retained. Reset panics if the server is still running.
func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopped {
		panic("rms: Reset on a running server")
	}
	s.stopped = false
	s.loadEpoch++ // an empty rejoin is a load change in itself
	s.initStateLocked()
}

// SessionIDs returns the connected application IDs in ascending order.
func (s *Server) SessionIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.sessionIDsLocked()...)
}

// sessionIDsLocked returns the live session IDs in ascending order, reusing
// the server's cached list (valid until the session set changes; callers
// never mutate membership while ranging it).
func (s *Server) sessionIDsLocked() []int {
	if s.idsOK {
		return s.idScratch
	}
	ids := s.idScratch[:0]
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.idScratch = ids
	s.idsOK = true
	return ids
}

// CheckInvariants verifies the server's internal accounting: every held
// node ID belongs to exactly one request, pools neither leak nor double-book
// IDs, per-session held counters match the requests' ID lists, and the
// metrics recorder's current allocation agrees with reality (the
// double-counted-area guard). A stopped server must hold nothing. It is the
// per-shard half of the chaos harness's post-run invariant checker.
func (s *Server) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		if len(s.sessions) != 0 {
			return fmt.Errorf("rms: stopped server still has %d sessions", len(s.sessions))
		}
		if s.cfg.Metrics != nil {
			for _, id := range s.cfg.Metrics.Apps() {
				if n := s.cfg.Metrics.Current(id); n != 0 {
					return fmt.Errorf("rms: stopped server still accrues %d nodes for app %d", n, id)
				}
			}
		}
		return nil
	}
	held := make(map[view.ClusterID]map[int]request.ID, len(s.pools))
	for _, id := range s.sessionIDsLocked() {
		sess := s.sessions[id]
		total := 0
		for _, r := range sess.app.Requests() {
			if r.Held {
				// A hold reserves schedule capacity only: it must never have
				// started, finished, or acquired node IDs — commit (clearing
				// Held) is the only path into the start machinery.
				if r.Started() {
					return fmt.Errorf("rms: held request %d has started", r.ID)
				}
				if r.Finished {
					return fmt.Errorf("rms: held request %d is finished", r.ID)
				}
				if len(r.NodeIDs) > 0 {
					return fmt.Errorf("rms: held request %d holds %d node IDs", r.ID, len(r.NodeIDs))
				}
			}
			for _, nid := range r.NodeIDs {
				pool := s.pools[r.Cluster]
				if pool == nil {
					return fmt.Errorf("rms: request %d holds nodes on unknown cluster %q", r.ID, r.Cluster)
				}
				if nid < 0 || nid >= pool.size {
					return fmt.Errorf("rms: request %d holds out-of-range node %d on %q", r.ID, nid, r.Cluster)
				}
				if pool.isFailed(nid) {
					return fmt.Errorf("rms: request %d holds dead node %d on %q", r.ID, nid, r.Cluster)
				}
				m := held[r.Cluster]
				if m == nil {
					m = make(map[int]request.ID)
					held[r.Cluster] = m
				}
				if other, dup := m[nid]; dup {
					return fmt.Errorf("rms: node %d on %q held by requests %d and %d", nid, r.Cluster, other, r.ID)
				}
				m[nid] = r.ID
				total++
			}
		}
		if sess.held != total {
			return fmt.Errorf("rms: app %d held counter %d != %d node IDs across its requests", id, sess.held, total)
		}
		if s.cfg.Metrics != nil {
			if n := s.cfg.Metrics.Current(id); n != total {
				return fmt.Errorf("rms: app %d metrics report %d current nodes, holds %d", id, n, total)
			}
		}
	}
	for cid, pool := range s.pools {
		for _, nid := range pool.freeIDs {
			if _, both := held[cid][nid]; both {
				return fmt.Errorf("rms: node %d on %q is both free and held", nid, cid)
			}
			if pool.isFailed(nid) {
				return fmt.Errorf("rms: node %d on %q is both free and down", nid, cid)
			}
		}
		if pool.available()+len(held[cid])+len(pool.failed) != pool.size {
			return fmt.Errorf("rms: cluster %q leaks node IDs: %d free + %d held + %d down != %d",
				cid, pool.available(), len(held[cid]), len(pool.failed), pool.size)
		}
		if cap := s.sched.Capacity(cid); cap != pool.capacity() {
			return fmt.Errorf("rms: cluster %q scheduler capacity %d != %d working nodes",
				cid, cap, pool.capacity())
		}
	}
	return nil
}

// Now returns the server's current time.
func (s *Server) Now() float64 { return s.clk.Now() }

// Request implements the request() operation (§3.1.3): it adds a new
// request to the system and returns its ID.
func (sess *Session) Request(spec RequestSpec) (request.ID, error) {
	return sess.RequestObserved(spec, nil)
}

// RequestObserved is Request with a routing hook: on success, observe (when
// non-nil) is invoked with the newly assigned request ID while the server
// lock is still held. Scheduling rounds also run under that lock, so any
// bookkeeping done inside observe — e.g. internal/federation registering
// its federated→shard-local ID mapping — is guaranteed to be in place
// before the request can start (OnStart) or be referenced by a later round.
// observe must not call back into the server.
func (sess *Session) RequestObserved(spec RequestSpec, observe func(request.ID)) (request.ID, error) {
	s := sess.s
	s.mu.Lock()
	if sess.killed {
		s.mu.Unlock()
		return 0, fmt.Errorf("rms: session was terminated")
	}
	var parent *request.Request
	if spec.RelatedHow != request.Free {
		parent = sess.findRequestLocked(spec.RelatedTo)
		if parent == nil {
			s.mu.Unlock()
			return 0, errRelated(spec.RelatedTo, ReasonNotFound)
		}
	}
	if _, ok := s.cfg.Clusters[spec.Cluster]; !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w %q", ErrUnknownCluster, spec.Cluster)
	}
	id := s.nextReq
	s.nextReq++
	r := request.New(id, sess.app.ID, spec.Cluster, spec.N, spec.Duration, spec.Type, spec.RelatedHow, parent)
	if err := r.Validate(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	r.SubmittedAt = s.clk.Now()
	sess.app.SetFor(spec.Type).Add(r)
	s.touchLocked(sess.app.ID)
	s.churn[spec.Cluster]++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.IncCounter(sess.app.ID, metrics.ChurnRequests, 1)
	}
	if observe != nil {
		observe(id)
	}
	s.requestRunLocked()
	s.mu.Unlock()
	s.flush()
	return id, nil
}

// Done implements the done() operation (§3.1.3): it immediately terminates
// a request. For started requests the duration is set to now − start-time.
// released lists the node IDs the application gives back; for a request
// followed by a NEXT child the remaining IDs are kept for the child
// (§3.1.2). For a request with no NEXT successor all IDs are returned and
// released may be nil.
func (sess *Session) Done(id request.ID, released []int) error {
	s := sess.s
	s.mu.Lock()
	if sess.killed {
		s.mu.Unlock()
		return fmt.Errorf("rms: session was terminated")
	}
	r := sess.findRequestLocked(id)
	if r == nil {
		s.mu.Unlock()
		return errRequest(id, ReasonNotFound)
	}
	if r.Finished {
		s.mu.Unlock()
		return errRequest(id, "already finished")
	}
	if !r.Started() {
		// A pending request is simply withdrawn: it is gone from the sets at
		// once, so it is reported as both finished and reaped.
		sess.app.SetFor(r.Type).Remove(r)
		s.touchLocked(sess.app.ID)
		s.notifyFinishedLocked(sess, r.ID)
		s.notifyReapedLocked(sess, []request.ID{r.ID})
		s.requestRunLocked()
		s.mu.Unlock()
		s.flush()
		return nil
	}
	now := s.clk.Now()
	if err := sess.finishLocked(r, now, released); err != nil {
		s.mu.Unlock()
		return err
	}
	s.requestRunLocked()
	s.mu.Unlock()
	s.flush()
	return nil
}

// Disconnect ends the session cleanly, releasing every resource.
func (sess *Session) Disconnect() {
	s := sess.s
	s.mu.Lock()
	if !sess.killed {
		s.teardownLocked(sess)
	}
	s.mu.Unlock()
	s.flush()
}

// findRequestLocked looks a request up across the application's three sets.
func (sess *Session) findRequestLocked(id request.ID) *request.Request {
	for _, set := range []*request.Set{sess.app.PA, sess.app.NP, sess.app.P} {
		if r := set.ByID(id); r != nil {
			return r
		}
	}
	return nil
}

// hasPendingNextChildLocked reports whether some unstarted request is NEXT-
// chained to r (its node IDs must then be preserved for hand-over). Only a
// same-cluster child counts: node IDs are cluster-scoped, so a cross-cluster
// NEXT child draws fresh IDs from its own pool and parking the parent's IDs
// for it would leak them when the parent is reaped.
func (sess *Session) hasPendingNextChildLocked(r *request.Request) bool {
	for _, q := range sess.app.Requests() {
		if q.RelatedTo == r && q.RelatedHow == request.Next && q.Cluster == r.Cluster && !q.Started() && !q.Finished {
			return true
		}
	}
	return false
}

// finishLocked terminates a started request at time now, handling node-ID
// release / hand-over.
func (sess *Session) finishLocked(r *request.Request, now float64, released []int) error {
	s := sess.s
	if now < r.StartedAt {
		now = r.StartedAt
	}

	// Which of the held IDs go back to the pool? Validated before any
	// mutation: a rejected done() must leave the request untouched and
	// retryable, not half-finished with node IDs that can never be freed.
	keepForChild := false
	if r.Type != request.PreAlloc {
		keepForChild = sess.hasPendingNextChildLocked(r)
		if !keepForChild {
			released = r.NodeIDs
		} else {
			for _, id := range released {
				if !containsInt(r.NodeIDs, id) {
					return errNode(r.ID, id)
				}
			}
		}
	}

	// Return the released IDs to the pool before mutating the request: the
	// pool validates the whole batch atomically, so a corrupt release (a
	// double free, an out-of-range or dead node — possible only through RMS
	// state corruption or a buggy application under node churn) is rejected
	// as a structured error and the request stays untouched and retryable.
	if r.Type != request.PreAlloc && len(released) > 0 {
		if err := s.pools[r.Cluster].free(released); err != nil {
			pe := err.(*poolError)
			return &RequestError{ID: r.ID, Node: pe.node, Reason: pe.reason}
		}
	}

	r.Duration = now - r.StartedAt
	if r.Duration == 0 {
		// Keep a zero-length allocation representable; it occupies nothing.
		r.Duration = 1e-9
	}
	r.Finished = true
	s.touchLocked(sess.app.ID)

	if r.Type == request.PreAlloc {
		s.notifyFinishedLocked(sess, r.ID)
		return nil // pre-allocations hold no node IDs
	}

	if len(released) > 0 {
		r.NodeIDs = removeInts(r.NodeIDs, released)
		sess.held -= len(released)
		s.recordAllocLocked(sess, now)
	}
	s.notifyFinishedLocked(sess, r.ID)
	return nil
}

// notifyFinishedLocked queues an OnRequestFinished notification for handlers
// implementing the RequestObserver extension.
func (s *Server) notifyFinishedLocked(sess *Session, id request.ID) {
	if ro, ok := sess.h.(RequestObserver); ok {
		s.pending = append(s.pending, func() { ro.OnRequestFinished(id) })
	}
}

// notifyReapedLocked queues an OnRequestsReaped notification for handlers
// implementing the RequestObserver extension. ids must be sorted ascending.
func (s *Server) notifyReapedLocked(sess *Session, ids []request.ID) {
	if len(ids) == 0 {
		return
	}
	if ro, ok := sess.h.(RequestObserver); ok {
		s.pending = append(s.pending, func() { ro.OnRequestsReaped(ids) })
	}
}

// teardownLocked releases everything an application holds and removes it.
func (s *Server) teardownLocked(sess *Session) {
	now := s.clk.Now()
	for _, r := range sess.app.Requests() {
		if len(r.NodeIDs) > 0 {
			s.mustFreeLocked(r.Cluster, r.NodeIDs)
			r.NodeIDs = nil
		}
		r.Finished = true
	}
	sess.held = 0
	s.recordAllocLocked(sess, now)
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.SetPreAlloc(sess.app.ID, now, 0)
	}
	sess.killed = true
	s.loadEpoch++
	s.sched.RemoveApp(sess.app.ID)
	delete(s.sessions, sess.app.ID)
	s.idsOK = false
	delete(s.lastViews, sess.app.ID)
	delete(s.deficitSince, sess.app.ID)
	s.requestRunLocked()
}

// killLocked terminates a misbehaving application (§3.1.4) and queues the
// OnKill notification.
func (s *Server) killLocked(sess *Session, reason string) {
	h := sess.h
	s.teardownLocked(sess)
	s.pending = append(s.pending, func() { h.OnKill(reason) })
}

// requestRunLocked schedules a scheduling round, coalescing triggers so the
// algorithm runs at most once per re-scheduling interval (§3.2).
func (s *Server) requestRunLocked() {
	if s.schedPending {
		return
	}
	now := s.clk.Now()
	delay := 0.0
	if s.ranOnce {
		if next := s.lastRunAt + s.cfg.ReschedInterval; next > now {
			delay = next - now
		}
	}
	s.schedPending = true
	s.schedTimer = s.clk.AfterFunc(delay, "rms.schedule", s.runScheduled)
}

// ScheduleNow forces a synchronous scheduling round at the current time,
// bypassing the re-scheduling interval. It exists for tests and external
// drivers that step rounds directly instead of waiting on clock timers;
// production code relies on the coalesced timer instead. It is a no-op on a
// stopped server.
func (s *Server) ScheduleNow() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.runLocked()
	s.mu.Unlock()
	s.flush()
}

// runScheduled is the timer callback for a scheduling round. Stop cancels
// the timers, but under a real clock a firing callback can race the crash;
// the stopped guard makes that race a no-op.
func (s *Server) runScheduled() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.schedPending = false
	s.runLocked()
	s.mu.Unlock()
	s.flush()
}

// flush delivers queued notifications without holding the lock, so handlers
// can synchronously call back into the server (the simulated applications
// do exactly that).
func (s *Server) flush() {
	for {
		s.mu.Lock()
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		batch := s.pending
		s.pending = nil
		s.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
	}
}

// recordStartLocked records a request's admit→start wait — sim-time
// inside the simulator (deterministic and meaningful), wall-time under
// clock.RealClock. Requests admitted before the observability layer
// existed (no submit stamp, e.g. attached from an old snapshot) are
// skipped.
func (s *Server) recordStartLocked(r *request.Request, now float64) {
	if s.hWait == nil || math.IsNaN(r.SubmittedAt) {
		return
	}
	wait := now - r.SubmittedAt
	if wait < 0 {
		wait = 0
	}
	s.hWait.Record(wait)
	if s.cfg.Scheduling != nil {
		if sess := s.sessions[r.AppID]; sess != nil {
			s.tenantWaitHistLocked(tenantKey(sess.app.Tenant)).Record(wait)
		}
	}
	s.obs.Event(obs.Event{Time: now, Type: obs.EvStart, Shard: s.obsLabel,
		App: r.AppID, Cluster: string(r.Cluster), Request: int(r.ID), Value: wait})
}

// recordAllocLocked pushes the session's held-node count to the metrics
// recorder. now must be the time captured at the start of the current
// locked section: re-reading the wall clock mid-section would go backwards
// relative to later bookkeeping that still uses the section's time.
func (s *Server) recordAllocLocked(sess *Session, now float64) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.SetAlloc(sess.app.ID, now, sess.held)
	}
}

// runLocked executes one scheduling round: sweep expired allocations, run
// the core algorithm, start requests, push views, and enforce preemption.
func (s *Server) runLocked() {
	now := s.clk.Now()
	s.lastRunAt = now
	s.ranOnce = true

	s.sweepExpiredLocked(now)

	outcome := s.sched.Schedule(now)
	s.startRequestsLocked(outcome, now)

	// Quota preemption: revoke the policy's victims before recomputing
	// views, so the freed capacity is visible this round; the follow-up
	// round fits the relieved demand into it.
	if s.enforceQuotaLocked(now) {
		s.requestRunLocked()
	}

	// Starting requests changes availability; recompute views so
	// applications always see post-start state.
	outcome = s.sched.Schedule(now)
	s.pushViewsLocked(outcome)
	deadline := s.enforcePreemptionLocked(now)
	s.recordPreAllocLocked(now)
	s.armWakeLocked(now, deadline)
	s.gcRequestsLocked(now)

	if s.obs != nil {
		st := s.sched.Stats()
		dirty := st.ArtifactsRecomputed - s.obsPrevRecomputed
		s.obsPrevRecomputed = st.ArtifactsRecomputed
		// Clock-measured duration: real seconds under clock.RealClock,
		// exactly zero inside the simulator (time only advances between
		// events), which keeps same-seed snapshots byte-identical.
		dur := s.clk.Now() - now
		s.hRound.Record(dur)
		s.hDirty.Record(float64(dirty))
		s.obs.Event(obs.Event{Time: now, Type: obs.EvRound, Shard: s.obsLabel, Value: dur})
	}
}

// gcRequestsLocked garbage-collects finished, unreferenced requests from
// every session's sets and tells RequestObserver handlers which IDs were
// reaped. Sessions are walked in ID order so the notification order is
// deterministic.
func (s *Server) gcRequestsLocked(now float64) {
	for _, id := range s.sessionIDsLocked() {
		sess := s.sessions[id]
		app := sess.app
		before := app.PA.Len() + app.NP.Len() + app.P.Len()
		if before == 0 {
			continue
		}
		ro, observes := sess.h.(RequestObserver)
		var collect func(*request.Request)
		if observes || s.hReap != nil {
			// One persistent callback serves every session and round; its
			// inputs live on the server (gcNow/gcObserve/gcReaped scratch).
			// A per-session closure here would cost one allocation per
			// session per steady round.
			if s.gcCollect == nil {
				s.gcCollect = func(r *request.Request) {
					if s.gcObserve {
						s.gcReaped = append(s.gcReaped, r.ID)
					}
					if s.hReap != nil {
						lag := s.gcNow - r.End()
						if lag < 0 || math.IsNaN(lag) {
							lag = 0 // withdrawn-but-referenced requests have no end time
						}
						s.hReap.Record(lag)
						s.obs.Event(obs.Event{Time: s.gcNow, Type: obs.EvReap, Shard: s.obsLabel,
							App: r.AppID, Cluster: string(r.Cluster), Request: int(r.ID), Value: lag})
					}
				}
			}
			s.gcNow = now
			s.gcObserve = observes
			s.gcReaped = s.gcReaped[:0]
			collect = s.gcCollect
		}
		app.PA.GC(now, collect)
		app.NP.GC(now, collect)
		app.P.GC(now, collect)
		if app.PA.Len()+app.NP.Len()+app.P.Len() != before {
			s.touchLocked(id)
		}
		if observes && len(s.gcReaped) > 0 {
			reaped := append([]request.ID(nil), s.gcReaped...)
			sort.Slice(reaped, func(i, j int) bool { return reaped[i] < reaped[j] })
			s.pending = append(s.pending, func() { ro.OnRequestsReaped(reaped) })
		}
	}
}

// sweepExpiredLocked finishes started requests whose duration elapsed.
// Applications normally call done() themselves; expiry is the contract's
// backstop. Surplus IDs not handed to a NEXT child are returned to the pool
// (for a shrinking NEXT update the application should have called done()
// with its chosen IDs; if it did not, the RMS picks).
func (s *Server) sweepExpiredLocked(now float64) {
	for _, id := range s.sessionIDsLocked() {
		sess := s.sessions[id]
		app := sess.app
		if app.PA.Len() == 0 && app.NP.Len() == 0 && app.P.Len() == 0 {
			continue // request-less federated session: nothing to sweep
		}
		for _, set := range [...]*request.Set{app.PA, app.NP, app.P} {
			for _, r := range set.All() {
				if !r.Started() || r.Finished || r.End() > now+1e-9 {
					continue
				}
				r.Finished = true
				s.touchLocked(id)
				s.notifyFinishedLocked(sess, r.ID)
				if r.Type == request.PreAlloc {
					continue
				}
				if sess.hasPendingNextChildLocked(r) {
					continue // IDs stay parked on r for hand-over
				}
				if len(r.NodeIDs) > 0 {
					s.mustFreeLocked(r.Cluster, r.NodeIDs)
					sess.held -= len(r.NodeIDs)
					r.NodeIDs = nil
					s.recordAllocLocked(sess, now)
				}
			}
		}
	}
}

// startRequestsLocked processes the outcome's ToStart list in order,
// allocating node IDs. A request whose IDs are not yet free is deferred:
// it stays unstarted and is reconsidered when resources are released
// (§A.5, situation 2).
func (s *Server) startRequestsLocked(outcome *core.Outcome, now float64) {
	for _, r := range outcome.ToStart {
		sess := s.sessions[r.AppID]
		if sess == nil {
			continue
		}
		switch r.Type {
		case request.PreAlloc:
			r.StartedAt = now
			s.touchLocked(r.AppID)
			s.recordStartLocked(r, now)
			h := sess.h
			id := r.ID
			s.pending = append(s.pending, func() { h.OnStart(id, nil) })

		default:
			// Inherit IDs from a finished NEXT parent. Only a same-cluster
			// parent can hand IDs over: node IDs are cluster-scoped, so a
			// cross-cluster NEXT must draw fresh IDs from its own pool.
			var inherited []int
			if r.RelatedHow == request.Next && r.RelatedTo != nil {
				parent := r.RelatedTo
				if parent.Cluster == r.Cluster && parent.Ended(now) && len(parent.NodeIDs) > 0 {
					inherited = parent.NodeIDs
				}
			}
			want := r.NAlloc
			pool := s.pools[r.Cluster]
			if len(inherited) > want {
				// A shrinking NEXT hand-over where the application did not
				// name the IDs to drop (e.g. the bridge request of an
				// announced update simply expired): the RMS picks the
				// surplus and returns it to the pool.
				surplus := inherited[want:]
				inherited = inherited[:want]
				s.mustFreeLocked(r.Cluster, surplus)
				sess.held -= len(surplus)
			}
			need := want - len(inherited)
			if pool.available() < need {
				// Defer: preempted resources have not been released yet.
				// The parent keeps any trimmed ID list for the retry.
				if r.RelatedTo != nil && len(inherited) > 0 {
					r.RelatedTo.NodeIDs = inherited
				}
				s.touchLocked(r.AppID)
				s.recordAllocLocked(sess, now)
				continue
			}
			ids := append(append([]int(nil), inherited...), pool.alloc(need)...)
			if r.RelatedTo != nil && len(inherited) > 0 {
				r.RelatedTo.NodeIDs = nil
			}
			r.NodeIDs = ids
			r.StartedAt = now
			s.touchLocked(r.AppID)
			s.recordStartLocked(r, now)
			sess.held += need
			s.recordAllocLocked(sess, now)
			h := sess.h
			id := r.ID
			cp := append([]int(nil), ids...)
			s.pending = append(s.pending, func() { h.OnStart(id, cp) })
		}
	}
}

// pushViewsLocked queues OnViews notifications for applications whose views
// changed since the last push. Views are trimmed to [now, ∞): their values
// in the past are reconstruction artifacts.
//
// The scheduler shares view maps across applications (idle applications in
// a CBF run see one map; idle preemptible applications share the idle
// grant), so the trim is memoized by map identity — each distinct map is
// trimmed once per round, not once per session.
func (s *Server) pushViewsLocked(outcome *core.Outcome) {
	now := s.clk.Now()
	if s.trimMemo == nil {
		s.trimMemo = make(map[uintptr]view.View)
	}
	clear(s.trimMemo)
	trim := func(v view.View) view.View {
		if v == nil {
			return view.New()
		}
		key := reflect.ValueOf(v).Pointer()
		if t, ok := s.trimMemo[key]; ok {
			return t
		}
		t := v.TrimBefore(now)
		s.trimMemo[key] = t
		return t
	}
	for _, id := range s.sessionIDsLocked() {
		sess := s.sessions[id]
		np := trim(outcome.NonPreemptViews[id])
		p := trim(outcome.PreemptViews[id])
		last, seen := s.lastViews[id]
		if seen && last[0].Equal(np) && last[1].Equal(p) {
			continue
		}
		s.lastViews[id] = [2]view.View{np, p}
		h := sess.h
		// Views are pushed without cloning: the OnViews contract makes them
		// immutable to the handler, and sessions sharing a map (idle
		// applications) share one trimmed object.
		s.pending = append(s.pending, func() { h.OnViews(np, p) })
	}
}

// enforcePreemptionLocked kills applications that keep holding more
// preemptible resources than granted past the grace period ("applications
// which steal resources", §A.6). It returns the earliest pending kill
// deadline (+Inf if none) so the server can arm a wake-up for it.
func (s *Server) enforcePreemptionLocked(now float64) float64 {
	var toKill []*Session
	earliest := math.Inf(1)
	// Session-ID order keeps multi-kill rounds (and their OnKill
	// notification order) deterministic.
	for _, id := range s.sessionIDsLocked() {
		sess := s.sessions[id]
		if sess.app.P.Len() == 0 {
			delete(s.deficitSince, id)
			continue
		}
		deficit := false
		for _, r := range sess.app.P.All() {
			if r.Started() && !r.Finished && len(r.NodeIDs) > r.NAlloc {
				deficit = true
				break
			}
		}
		if !deficit {
			delete(s.deficitSince, id)
			continue
		}
		since, ok := s.deficitSince[id]
		if !ok {
			since = now
			s.deficitSince[id] = now
		}
		deadline := since + s.cfg.GracePeriod
		if now >= deadline {
			toKill = append(toKill, sess)
		} else if deadline < earliest {
			earliest = deadline
		}
	}
	for _, sess := range toKill {
		s.killLocked(sess, "protocol violation: preemptible resources not released within the grace period")
	}
	return earliest
}

// recordPreAllocLocked updates the accounting extension's pre-allocation
// integrals.
func (s *Server) recordPreAllocLocked(now float64) {
	if s.cfg.Metrics == nil {
		return
	}
	for id, sess := range s.sessions {
		pre := 0
		for _, r := range sess.app.PA.All() {
			if r.Started() && !r.Ended(now) {
				pre += r.N
			}
		}
		s.cfg.Metrics.SetPreAlloc(id, now, pre)
	}
}

// armWakeLocked sets a timer for the next interesting instant: the earliest
// future request start, allocation end, or preemption-kill deadline.
func (s *Server) armWakeLocked(now float64, deadline float64) {
	next := deadline
	for _, sess := range s.sessions {
		app := sess.app
		if app.PA.Len() == 0 && app.NP.Len() == 0 && app.P.Len() == 0 {
			continue
		}
		for _, set := range [...]*request.Set{app.PA, app.NP, app.P} {
			for _, r := range set.All() {
				// Held requests never start; their scheduled time is not a
				// wake-worthy instant (the reservation coordinator drives
				// them on its own timers).
				if !r.Started() && !r.Finished && !r.Held && r.ScheduledAt > now && !math.IsInf(r.ScheduledAt, 1) {
					if r.ScheduledAt < next {
						next = r.ScheduledAt
					}
				}
				if r.Started() && !r.Finished {
					if end := r.End(); end > now && end < next {
						next = end
					}
				}
			}
		}
	}
	if s.wakeTimer != nil {
		s.wakeTimer.Stop()
		s.wakeTimer = nil
	}
	if !math.IsInf(next, 1) {
		s.wakeTimer = s.clk.AfterFunc(next-now, "rms.wake", func() {
			s.mu.Lock()
			if !s.schedPending {
				s.requestRunLocked()
			}
			s.mu.Unlock()
			s.flush()
		})
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func removeInts(xs, rm []int) []int {
	out := xs[:0]
	for _, x := range xs {
		if !containsInt(rm, x) {
			out = append(out, x)
		}
	}
	return out
}
