package core

import (
	"sort"

	"coormv2/internal/request"
	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// PreemptPolicy selects how preemptible resources are divided among
// applications.
type PreemptPolicy uint8

const (
	// EquiPartitionFilling is the paper's default policy (§3.2, §A.4.3):
	// resources are divided equally among applications with preemptible
	// requests, but resources an application does not request may be
	// filled by the others.
	EquiPartitionFilling PreemptPolicy = iota
	// StrictEquiPartition is the baseline of §5.4: every application is
	// shown exactly its equi-partition, regardless of whether the other
	// applications use theirs.
	StrictEquiPartition
)

// String returns a human-readable policy name.
func (p PreemptPolicy) String() string {
	if p == StrictEquiPartition {
		return "strict-equi-partition"
	}
	return "equi-partition-filling"
}

// eqSchedule implements Algorithm 3 (§A.4.3): it divides the resources of
// vin among the applications' preemptible requests and returns the
// preemptive view of each application, keyed by application ID. As a side
// effect the ScheduledAt and NAlloc attributes of the preemptible requests
// are updated. It runs on a throwaway scheduler, so nothing is cached
// across calls (the applications' caches are written but never reused with
// stale inputs — every cache carries its exact input identity).
func eqSchedule(apps []*AppState, vin view.View, t0 float64, policy PreemptPolicy) map[int]view.View {
	s := NewScheduler(map[view.ClusterID]int{})
	s.apps = apps
	s.roundApps = apps
	s.policy = policy
	return s.eqScheduleIncremental(vin, t0, &s.sc, false)
}

// eqScheduleIncremental is Algorithm 3 with per-application and per-cluster
// caching: preliminary occupancy views are reused when the application's
// preemptible set is clean and its availability-dependent allocs re-check
// unchanged; the per-cluster interval walk is reused when every input
// profile is the identical (immutable) object; and each application's
// granted view keeps its object identity when none of its fragments
// changed, which in turn lets the final rescheduling pass skip clean
// applications. All reuse conditions are exact, so the result is
// bit-identical to a full recomputation.
// outSeeded reports that the persistent preemptive-view map already holds
// every application's entry from the previous round, so reused
// applications skip their map write.
func (s *Scheduler) eqScheduleIncremental(vin view.View, t0 float64, sc *scratch, outSeeded bool) map[int]view.View {
	apps := s.roundApps // this round's policy order (s.apps under FIFO)
	n := len(apps)
	if s.outPViews == nil {
		s.outPViews = make(map[int]view.View, n)
	}
	out := s.outPViews
	if n == 0 {
		return out
	}

	// Compute preliminary views of occupied resources (lines 1–3).
	sc.vocc = grown(sc.vocc, n)
	vocc := sc.vocc
	for i, a := range apps {
		c := &a.cache
		if a.P.Len() == 0 {
			// No requests: toView and fit would be no-ops on an empty set
			// and the subtraction below a full copy of vin for nothing.
			vocc[i] = nil
			continue
		}
		if s.roundDynamic && !a.admitted {
			// Not admitted: pending preemptible requests stay
			// unscheduled; only the started/fixed allocations occupy.
			s.stats.EqOccRecomputed++
			unschedulePending(a.P)
			vocc[i] = toViewScratch(a.P, vin, t0, sc)
			c.eqOK = false
			continue
		}
		if c.eqOK && c.pSettled && allocStable(a.P, vin, t0, c.voccNAlloc) {
			s.stats.EqOccReused++
			vocc[i] = c.vocc
			continue
		}
		s.stats.EqOccRecomputed++
		fixed := toViewScratch(a.P, vin, t0, sc)
		avail := vin.Sub(fixed)
		avail.MutClampMin(0)
		pending := fitScratch(a.P, avail, t0, sc)
		if fixed == nil {
			fixed = pending // may still be nil: app occupies nothing
		} else {
			fixed.MutAdd(pending)
		}
		vocc[i] = fixed
		c.vocc = fixed
		c.pSettled = allFixed(a.P)
		c.pRects = captureRects(a.P, c.pRects, false)
		if c.pSettled {
			c.voccNAlloc = captureNAllocs(a.P, c.voccNAlloc)
		} else {
			c.voccNAlloc = c.voccNAlloc[:0]
		}
		c.eqOK = true
	}

	// Applications that occupy nothing are interchangeable in the
	// interval walk below: they request 0 nodes at every instant, so they
	// neither join the water-filling nor change `active`, and all of them
	// receive the identical hypothetical-share view (Alg. 3 lines 11–12:
	// avail/(active+1)). Walk only the occupying applications plus — when
	// at least one application is idle — one virtual idle slot, and share
	// that slot's view among every idle application. With federated
	// sessions connected to every shard (internal/federation.Connect) this
	// keeps the walk proportional to the applications that actually hold
	// or request preemptible resources on this shard.
	sc.occ = sc.occ[:0]
	for i := range apps {
		if vocc[i] != nil {
			sc.occ = append(sc.occ, i)
		}
	}
	occ := sc.occ
	nw := len(occ) // walked slots; slot nw is the virtual idle one, if any
	if len(occ) < n {
		nw++
	}

	// Gather every cluster mentioned by vin or any occupancy view.
	if sc.cseen == nil {
		sc.cseen = make(map[view.ClusterID]bool)
	}
	clear(sc.cseen)
	sc.clusters = sc.clusters[:0]
	addCluster := func(cid view.ClusterID) {
		if !sc.cseen[cid] {
			sc.cseen[cid] = true
			sc.clusters = append(sc.clusters, cid)
		}
	}
	for cid := range vin {
		addCluster(cid)
	}
	for _, i := range occ {
		for cid := range vocc[i] {
			addCluster(cid)
		}
	}
	clusters := sc.clusters
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })

	// For each cluster, walk the piece-wise constant intervals
	// (lines 4–27) — or reuse the cached walk when every input profile is
	// the identical object (profiles are immutable, so identity implies
	// equality; a recomputed occupancy always carries fresh objects).
	sc.profs = grown(sc.profs, nw+1)
	sc.walks = grown(sc.walks, len(clusters))
	var zero view.View
	for ci, cid := range clusters {
		profs := sc.profs[:nw+1]
		profs[0] = vin.Get(cid)
		for j, i := range occ {
			profs[1+j] = vocc[i].Get(cid)
		}
		if nw > len(occ) {
			profs[1+len(occ)] = zero.Get(cid) // virtual idle slot
		}
		if w := s.eqWalks[cid]; w != nil && walkKeyEqual(w.key, profs) {
			s.stats.WalksReused++
			sc.walks[ci] = w
			continue
		}
		s.stats.WalksRecomputed++
		w := &clusterWalk{
			key:   append([]*stepfunc.StepFunc(nil), profs...),
			frags: walkCluster(profs, nw, s.policy, sc),
		}
		s.eqWalks[cid] = w
		sc.walks[ci] = w
	}

	// Assemble each slot's granted view from the per-cluster fragments,
	// keeping the cached view object when nothing changed (stability feeds
	// the rescheduling pass below). Slot nw-1 is the shared idle view.
	sc.slotViews = grown(sc.slotViews, nw)
	sc.slotStable = grown(sc.slotStable, nw)
	for j := 0; j < nw; j++ {
		var cached view.View
		if j < len(occ) {
			cached = apps[occ[j]].cache.granted
		} else {
			cached = s.eqIdle
		}
		nonzero := 0
		match := cached != nil
		for ci := range clusters {
			f := sc.walks[ci].frags[j]
			if f.IsZero() {
				continue
			}
			nonzero++
			if match && cached[clusters[ci]] != f {
				match = false
			}
		}
		if match && len(cached) == nonzero {
			sc.slotViews[j], sc.slotStable[j] = cached, true
			continue
		}
		v := make(view.View, nonzero)
		for ci := range clusters {
			if f := sc.walks[ci].frags[j]; !f.IsZero() {
				v[clusters[ci]] = f
			}
		}
		sc.slotViews[j], sc.slotStable[j] = v, false
		if j < len(occ) {
			apps[occ[j]].cache.granted = v
		} else {
			s.eqIdle = v
		}
	}
	var idle view.View // shared by every idle application
	idleStable := false
	if nw > len(occ) {
		idle, idleStable = sc.slotViews[nw-1], sc.slotStable[nw-1]
	}

	// Reschedule all requests according to the computed views, so that
	// ScheduledAt and NAlloc are set correctly (lines 28–30). Idle
	// applications with no preemptible requests at all have nothing to
	// reschedule and share the idle view's map (consumers treat pushed
	// views as immutable). A clean, settled application whose granted view
	// object is unchanged and whose alloc() values re-check identical
	// against it has nothing to update either.
	j := 0
	for i, a := range apps {
		var v view.View
		var stable bool
		if j < len(occ) && occ[j] == i {
			v, stable = sc.slotViews[j], sc.slotStable[j]
			j++
		} else {
			v, stable = idle, idleStable
			if a.P.Len() == 0 {
				if !outSeeded || !stable {
					out[a.ID] = v
				}
				continue
			}
		}
		c := &a.cache
		if s.roundDynamic && !a.admitted {
			// Not admitted: refresh the started allocations against the
			// granted view but leave pending requests unscheduled.
			s.stats.EqAppRecomputed++
			toViewScratch(a.P, v, t0, sc)
			unschedulePending(a.P)
			out[a.ID] = v
			c.eqOK = false
			continue
		}
		if stable && c.eqOK && c.pSettled && grantAllocStable(a.P, v, t0) {
			s.stats.EqAppReused++
			if !outSeeded {
				out[a.ID] = v
			}
			continue
		}
		s.stats.EqAppRecomputed++
		fixed := toViewScratch(a.P, v, t0, sc)
		avail := v.Sub(fixed)
		avail.MutClampMin(0)
		fitScratch(a.P, avail, t0, sc)
		out[a.ID] = v
	}
	return out
}

// walkKeyEqual reports whether two input-profile lists are identical.
func walkKeyEqual(key, profs []*stepfunc.StepFunc) bool {
	if len(key) != len(profs) {
		return false
	}
	for i := range key {
		if key[i] != profs[i] {
			return false
		}
	}
	return true
}

// captureNAllocs records every request's NAlloc in set order.
func captureNAllocs(rs *request.Set, dst []int) []int {
	dst = dst[:0]
	for _, r := range rs.All() {
		dst = append(dst, r.NAlloc)
	}
	return dst
}

// walkCluster runs one cluster's piece-wise constant interval walk
// (Alg. 3 lines 4–27): profs[0] is the vin fragment, profs[1+j] walked
// slot j's occupancy fragment. It returns the per-slot result fragments.
func walkCluster(profs []*stepfunc.StepFunc, nw int, policy PreemptPolicy, sc *scratch) []*stepfunc.StepFunc {
	// Merge the breakpoints of all profiles into one sorted, deduplicated
	// slice (no per-cluster set allocation).
	bps := append(sc.bps[:0], 0)
	for _, f := range profs {
		bps = f.AppendBreakpoints(bps)
	}
	sort.Float64s(bps)
	dedup := bps[:1]
	for _, t := range bps[1:] {
		if t != dedup[len(dedup)-1] {
			dedup = append(dedup, t)
		}
	}
	sc.bps = bps
	bps = dedup

	sc.cursor = grown(sc.cursor, nw+1)
	sc.val = grown(sc.val, nw+1)
	sc.req = grown(sc.req, nw)
	sc.share = grown(sc.share, nw)
	sc.need = grown(sc.need, nw)
	sc.grant = grown(sc.grant, nw)
	sc.builders = grown(sc.builders, nw)
	for i := range sc.cursor {
		sc.cursor[i] = 0
		sc.val[i] = 0
	}
	for i := 0; i < nw; i++ {
		sc.builders[i].Reset()
	}

	for _, t := range bps {
		// Advance every profile cursor to its segment covering t. The
		// breakpoint list is the union of all profiles' breakpoints, so
		// this walk visits each profile point exactly once per cluster.
		for s, f := range profs {
			for sc.cursor[s] < f.Len() {
				pt, pn := f.At(sc.cursor[s])
				if pt > t {
					break
				}
				sc.val[s] = pn
				sc.cursor[s]++
			}
		}
		vinVal := sc.val[0]
		if vinVal < 0 {
			vinVal = 0
		}
		sum := 0
		active := 0
		for i := 0; i < nw; i++ {
			r := sc.val[1+i]
			if r < 0 {
				r = 0
			}
			sc.req[i] = r
			sum += r
			if r > 0 {
				active++
			}
		}
		divideInterval(vinVal, sc.req, sum, active, policy, sc.share, sc.need, sc.grant)
		for i := 0; i < nw; i++ {
			sc.builders[i].Append(t, sc.share[i])
		}
	}
	frags := make([]*stepfunc.StepFunc, nw)
	for i := 0; i < nw; i++ {
		frags[i] = sc.builders[i].Fn()
	}
	return frags
}

// divideInterval computes the per-application view values for one
// piece-wise constant interval: avail nodes available, req[i] nodes
// requested by application i (sum, active precomputed). The result is
// written into out; need and grant are caller-provided scratch of the same
// length.
func divideInterval(avail int, req []int, sum, active int, policy PreemptPolicy, out, need, grant []int) {
	n := len(req)

	// Fair-share size for an application: its equi-partition. An inactive
	// application's hypothetical share uses active+1 partitions (Alg. 3
	// lines 11–12 and 22–23: "the number of partitions if this application
	// were to become active").
	share := func(i int) int {
		parts := active
		if req[i] == 0 {
			parts = active + 1
		}
		if parts == 0 {
			parts = 1
		}
		return avail / parts
	}

	if policy == StrictEquiPartition {
		for i := 0; i < n; i++ {
			out[i] = share(i)
		}
		return
	}

	if sum > avail {
		// Congested: distribute resources equally until none are left free
		// (lines 8–18), using iterative water-filling.
		copy(need, req)
		for i := 0; i < n; i++ {
			grant[i] = 0
		}
		left := avail
		for left > 0 {
			unsat := 0
			for i := 0; i < n; i++ {
				if need[i] > 0 {
					unsat++
				}
			}
			if unsat == 0 {
				break
			}
			veq := left / unsat
			if veq < 1 {
				veq = 1
			}
			progressed := false
			for i := 0; i < n; i++ {
				if need[i] == 0 || left == 0 {
					continue
				}
				take := need[i]
				if veq < take {
					take = veq
				}
				if left < take {
					take = left
				}
				grant[i] += take
				need[i] -= take
				left -= take
				if take > 0 {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		for i := 0; i < n; i++ {
			if req[i] > 0 {
				out[i] = grant[i]
			} else {
				// Inactive applications still see their hypothetical share
				// so they can decide to become active.
				out[i] = share(i)
			}
		}
		return
	}

	// Uncongested: give each application the resources left free by the
	// others, but not less than its equi-partition (lines 19–25).
	for i := 0; i < n; i++ {
		leftover := avail - (sum - req[i])
		if s := share(i); leftover < s {
			leftover = s
		}
		if leftover < 0 {
			leftover = 0
		}
		out[i] = leftover
	}
}
