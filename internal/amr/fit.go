package amr

import (
	"fmt"
	"math"
	"math/rand"

	"coormv2/internal/stats"
)

// Measurement is one (nodes, data size) → step duration observation, the
// shape of the Uintah data of Fig. 2.
type Measurement struct {
	Nodes    int
	SizeMiB  float64
	Duration float64
}

// Fig2Sizes are the mesh sizes of Fig. 2, in MiB (12, 48, 196, 784 and
// 3136 GiB).
var Fig2Sizes = []float64{12 * 1024, 48 * 1024, 196 * 1024, 784 * 1024, 3136 * 1024}

// Fig2Nodes are the node counts of Fig. 2's x-axis (1 … 16k, powers of 4).
var Fig2Nodes = []int{1, 4, 16, 64, 256, 1024, 4096, 16384}

// SynthesizeMeasurements generates a synthetic measurement grid from the
// given model with multiplicative log-normal noise. The original Uintah
// measurements are not publicly available; this substitution (documented in
// DESIGN.md) exercises the same fitting pipeline: the fit must recover the
// generating parameters to within the paper's 15 % error band.
func SynthesizeMeasurements(p SpeedupParams, rng *rand.Rand, noise float64) []Measurement {
	var out []Measurement
	for _, s := range Fig2Sizes {
		for _, n := range Fig2Nodes {
			d := p.StepTime(n, s) * math.Exp(rng.NormFloat64()*noise)
			out = append(out, Measurement{Nodes: n, SizeMiB: s, Duration: d})
		}
	}
	return out
}

// FitSpeedup fits the model t(n,S) = A·S/n + B·n + C·S + D against
// measurements by weighted linear least squares. Each row is divided by
// the observed duration, which minimizes *relative* residuals — the
// "logarithmic fitting" of §2.2 to first order, appropriate because the
// durations span three decades.
func FitSpeedup(ms []Measurement) (SpeedupParams, error) {
	if len(ms) < 4 {
		return SpeedupParams{}, fmt.Errorf("amr: need at least 4 measurements, got %d", len(ms))
	}
	rows := make([][]float64, len(ms))
	y := make([]float64, len(ms))
	for i, m := range ms {
		if m.Duration <= 0 || m.Nodes < 1 {
			return SpeedupParams{}, fmt.Errorf("amr: invalid measurement %+v", m)
		}
		w := 1 / m.Duration
		rows[i] = []float64{
			m.SizeMiB / float64(m.Nodes) * w,
			float64(m.Nodes) * w,
			m.SizeMiB * w,
			1 * w,
		}
		y[i] = 1 // duration * w
	}
	beta, err := stats.SolveLeastSquares(rows, y)
	if err != nil {
		return SpeedupParams{}, err
	}
	return SpeedupParams{A: beta[0], B: beta[1], C: beta[2], D: beta[3]}, nil
}

// MaxRelError returns the largest relative error of the model against the
// measurements — the paper reports "within an error of less than 15% for
// any data point" (§2.2).
func MaxRelError(p SpeedupParams, ms []Measurement) float64 {
	worst := 0.0
	for _, m := range ms {
		pred := p.StepTime(m.Nodes, m.SizeMiB)
		rel := math.Abs(pred-m.Duration) / m.Duration
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
