// Package transport exposes a CooRMv2 RMS over TCP using the
// newline-delimited JSON protocol of internal/proto. Together with
// clock.RealClock it is the "real-life prototype RMS" of §5: the simulator
// and the daemon share every line of scheduling code.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"coormv2/internal/proto"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Server accepts TCP connections and bridges them to rms.Server sessions.
type Server struct {
	rms *rms.Server
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf logs transport events; defaults to log.Printf. Tests silence it.
	Logf func(format string, args ...any)
}

// NewServer wraps an RMS server. Call Serve to start accepting.
func NewServer(r *rms.Server) *Server {
	return &Server{rms: r, conns: make(map[net.Conn]struct{}), Logf: log.Printf}
}

// Listen binds the given address ("host:port"; use ":0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close is called. It returns nil on a
// clean shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("transport: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// connHandler adapts one TCP connection to rms.AppHandler.
type connHandler struct {
	mu   sync.Mutex
	w    *bufio.Writer
	conn net.Conn
	logf func(string, ...any)
}

func (h *connHandler) send(m proto.Message) {
	data, err := m.Marshal()
	if err != nil {
		h.logf("transport: marshal: %v", err)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, err := h.w.Write(append(data, '\n')); err == nil {
		h.w.Flush()
	}
}

func (h *connHandler) OnViews(np, p view.View) {
	h.send(proto.Message{
		Type:           proto.MsgViews,
		NonPreemptView: proto.EncodeView(np),
		PreemptView:    proto.EncodeView(p),
	})
}

func (h *connHandler) OnStart(id request.ID, nodeIDs []int) {
	h.send(proto.Message{Type: proto.MsgStart, ReqID: int64(id), NodeIDs: nodeIDs})
}

func (h *connHandler) OnKill(reason string) {
	h.send(proto.Message{Type: proto.MsgKill, Reason: reason})
	h.conn.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	h := &connHandler{w: bufio.NewWriter(conn), conn: conn, logf: s.Logf}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	// The first frame must be a connect.
	if !scanner.Scan() {
		return
	}
	m, err := proto.Unmarshal(scanner.Bytes())
	if err != nil || m.Type != proto.MsgConnect {
		h.send(proto.Message{Type: proto.MsgError, Reason: "expected connect"})
		return
	}
	sess := s.rms.Connect(h)
	h.send(proto.Message{Type: proto.MsgConnected, AppID: sess.AppID()})

	defer sess.Disconnect()
	for scanner.Scan() {
		m, err := proto.Unmarshal(scanner.Bytes())
		if err != nil {
			h.send(proto.Message{Type: proto.MsgError, Reason: err.Error()})
			continue
		}
		switch m.Type {
		case proto.MsgRequest:
			spec, err := m.DecodeRequestSpec()
			if err != nil {
				h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq, Reason: err.Error()})
				continue
			}
			id, err := sess.Request(spec)
			if err != nil {
				h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq, Reason: err.Error()})
				continue
			}
			h.send(proto.Message{Type: proto.MsgReqAck, Seq: m.Seq, ReqID: int64(id)})

		case proto.MsgDone:
			if err := sess.Done(request.ID(m.ReqID), m.Released); err != nil {
				h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq, Reason: err.Error()})
				continue
			}
			h.send(proto.Message{Type: proto.MsgReqAck, Seq: m.Seq, ReqID: m.ReqID})

		case proto.MsgBye:
			return

		default:
			h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq,
				Reason: fmt.Sprintf("unexpected message %q", m.Type)})
		}
	}
	if err := scanner.Err(); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		s.Logf("transport: read: %v", err)
	}
}
