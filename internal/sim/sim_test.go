package sim

import (
	"math"
	"testing"
)

func TestRunInOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(10, "b", func() { order = append(order, "b") })
	e.At(5, "a", func() { order = append(order, "a") })
	e.At(20, "c", func() { order = append(order, "c") })
	n := e.RunAll()
	if n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, "tie", func() { order = append(order, i) })
	}
	e.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.At(5, "outer", func() {
		e.After(10, "inner", func() { at = e.Now() })
	})
	e.RunAll()
	if at != 15 {
		t.Errorf("After fired at %v, want 15", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1, "tick", tick)
		}
	}
	e.After(1, "tick", tick)
	e.RunAll()
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	fired := []float64{}
	for _, tt := range []float64{1, 2, 3, 10, 20} {
		tt := tt
		e.At(tt, "x", func() { fired = append(fired, tt) })
	}
	e.Run(5)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events before horizon", fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want horizon 5", e.Now())
	}
	e.RunAll()
	if len(fired) != 5 {
		t.Errorf("remaining events lost after horizon resume: %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(10, "x", func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop should report true for pending event")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	e.RunAll()
	if fired {
		t.Error("stopped event fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(1, "x", func() {})
	e.RunAll()
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestStopEngine(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, "a", func() { count++; e.Stop() })
	e.At(2, "b", func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Errorf("Stop did not halt the loop: count=%d", count)
	}
	// Run can resume afterwards.
	e.RunAll()
	if count != 2 {
		t.Errorf("resume after Stop failed: count=%d", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, "past", func() {})
	})
	e.RunAll()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	e.After(-1, "x", func() {})
}

func TestNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("NaN time should panic")
		}
	}()
	e.At(math.NaN(), "x", func() {})
}

func TestProcessedAndPending(t *testing.T) {
	e := NewEngine()
	e.At(1, "a", func() {})
	e.At(2, "b", func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.RunAll()
	if e.Processed() != 2 || e.Pending() != 0 {
		t.Errorf("Processed=%d Pending=%d", e.Processed(), e.Pending())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var trace []float64
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth < 5 {
				e.After(1.5, "l", func() { spawn(depth + 1) })
				e.After(0.5, "r", func() { spawn(depth + 1) })
			}
		}
		e.At(0, "root", func() { spawn(0) })
		e.RunAll()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
