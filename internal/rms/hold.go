package rms

import (
	"fmt"
	"math"

	"coormv2/internal/metrics"
	"coormv2/internal/request"
)

// Two-phase reservation support. A *hold* is a request admitted into the
// scheduler like any other pending request — it reserves capacity in the
// CBF/eqSchedule window from the moment it is placed — but the RMS never
// starts it: appendToStart and the wake-up scan skip Held requests. A
// reservation coordinator (internal/federation's gang machinery) owns the
// hold and either commits it (CommitHold — the request becomes an ordinary
// pending request and starts when its slot arrives) or releases it
// (ReleaseHold — the capacity is returned with no application-visible
// notification; the coordinator is responsible for its own routing tables).
//
// Holds deliberately reuse the pending-request machinery: they are carried
// by ClusterSnapshot across migrations, participate in incremental
// dirty-tracking (a held request is never Fixed, so its application is
// recomputed every round — cached artifacts stay byte-identical with the
// full-recompute mode), and are checked by CheckInvariants (held ⇒ never
// started, no node IDs).

// HoldInfo is a point-in-time snapshot of one request's scheduling state,
// used by reservation coordinators to decide commit vs re-align vs abort.
type HoldInfo struct {
	ScheduledAt float64 // +Inf when unschedulable
	Duration    float64
	Started     bool
	Finished    bool
	Held        bool
	NotBefore   float64
}

// HoldObserved admits a tentative hold: a request that reserves schedule
// capacity no earlier than notBefore but can never start. Like
// RequestObserved, observe (when non-nil) runs with the server lock held so
// routing tables are in place before any round can reference the request.
func (sess *Session) HoldObserved(spec RequestSpec, notBefore float64, observe func(request.ID)) (request.ID, error) {
	s := sess.s
	s.mu.Lock()
	if sess.killed {
		s.mu.Unlock()
		return 0, fmt.Errorf("rms: session was terminated")
	}
	var parent *request.Request
	if spec.RelatedHow != request.Free {
		parent = sess.findRequestLocked(spec.RelatedTo)
		if parent == nil {
			s.mu.Unlock()
			return 0, errRelated(spec.RelatedTo, ReasonNotFound)
		}
	}
	if _, ok := s.cfg.Clusters[spec.Cluster]; !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w %q", ErrUnknownCluster, spec.Cluster)
	}
	id := s.nextReq
	s.nextReq++
	r := request.New(id, sess.app.ID, spec.Cluster, spec.N, spec.Duration, spec.Type, spec.RelatedHow, parent)
	if err := r.Validate(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	r.SubmittedAt = s.clk.Now()
	r.Held = true
	if notBefore > 0 && !math.IsNaN(notBefore) {
		r.NotBefore = notBefore
	}
	sess.app.SetFor(spec.Type).Add(r)
	s.touchLocked(sess.app.ID)
	s.churn[spec.Cluster]++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.IncCounter(sess.app.ID, metrics.ChurnRequests, 1)
	}
	if observe != nil {
		observe(id)
	}
	s.requestRunLocked()
	s.mu.Unlock()
	s.flush()
	return id, nil
}

// CommitHold converts a hold into an ordinary pending request: the reserved
// slot becomes a real scheduled start. The NotBefore floor is kept — the
// coordinator aligned it with the other legs of the gang.
func (sess *Session) CommitHold(id request.ID) error {
	s := sess.s
	s.mu.Lock()
	if sess.killed {
		s.mu.Unlock()
		return fmt.Errorf("rms: session was terminated")
	}
	r := sess.findRequestLocked(id)
	if r == nil {
		s.mu.Unlock()
		return errRequest(id, ReasonNotFound)
	}
	if !r.Held {
		s.mu.Unlock()
		return errRequest(id, "not held")
	}
	r.Held = false
	s.touchLocked(sess.app.ID)
	s.requestRunLocked()
	s.mu.Unlock()
	s.flush()
	return nil
}

// ReleaseHold withdraws an uncommitted hold, returning its reserved capacity.
// Unlike Done on a pending request it is silent: no finish/reap notification
// reaches the handler, because the coordinator that placed the hold is the
// only party that knows about it and prunes its own tables synchronously
// (an abort must not look like a completed request to the application).
func (sess *Session) ReleaseHold(id request.ID) error {
	s := sess.s
	s.mu.Lock()
	if sess.killed {
		s.mu.Unlock()
		return fmt.Errorf("rms: session was terminated")
	}
	r := sess.findRequestLocked(id)
	if r == nil {
		s.mu.Unlock()
		return errRequest(id, ReasonNotFound)
	}
	if !r.Held {
		s.mu.Unlock()
		return errRequest(id, "not held")
	}
	sess.app.SetFor(r.Type).Remove(r)
	s.touchLocked(sess.app.ID)
	s.requestRunLocked()
	s.mu.Unlock()
	s.flush()
	return nil
}

// SetNotBefore adjusts the persistent start-time floor of an unstarted
// request — the cross-shard analogue of fit()'s parent delay: a reservation
// coordinator pins one leg so the other can align with it. The next round
// reschedules the request no earlier than t.
func (sess *Session) SetNotBefore(id request.ID, t float64) error {
	s := sess.s
	s.mu.Lock()
	if sess.killed {
		s.mu.Unlock()
		return fmt.Errorf("rms: session was terminated")
	}
	r := sess.findRequestLocked(id)
	if r == nil {
		s.mu.Unlock()
		return errRequest(id, ReasonNotFound)
	}
	if r.Started() {
		s.mu.Unlock()
		return errRequest(id, "already started")
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		s.mu.Unlock()
		return errRequest(id, "invalid NotBefore")
	}
	if t < 0 {
		t = 0
	}
	if r.NotBefore == t {
		s.mu.Unlock()
		return nil
	}
	r.NotBefore = t
	s.touchLocked(sess.app.ID)
	s.requestRunLocked()
	s.mu.Unlock()
	s.flush()
	return nil
}

// ScheduleInfo reports the current scheduling state of a request. The
// reservation coordinator reads it after a synchronous round (ScheduleNow)
// to decide whether the legs of a gang line up.
func (sess *Session) ScheduleInfo(id request.ID) (HoldInfo, error) {
	s := sess.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.killed {
		return HoldInfo{}, fmt.Errorf("rms: session was terminated")
	}
	r := sess.findRequestLocked(id)
	if r == nil {
		return HoldInfo{}, errRequest(id, ReasonNotFound)
	}
	info := HoldInfo{
		ScheduledAt: r.ScheduledAt,
		Duration:    r.Duration,
		Started:     r.Started(),
		Finished:    r.Finished,
		Held:        r.Held,
		NotBefore:   r.NotBefore,
	}
	if r.Started() {
		info.ScheduledAt = r.StartedAt
	}
	return info, nil
}
