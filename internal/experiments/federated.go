package experiments

import (
	"fmt"

	"coormv2/internal/apps"
	"coormv2/internal/clock"
	"coormv2/internal/federation"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/view"
	"coormv2/internal/workload"
)

// FederatedReplayConfig parametrizes the federated workload scenario: a
// rigid-job trace (SWF or synthetic) split round-robin across N shard
// clusters, with an optional scavenging PSA per cluster (malleable) and an
// optional predictably-evolving application — the §4 application mix
// running against a sharded RMS instead of a single one.
type FederatedReplayConfig struct {
	// Jobs is the rigid trace. Jobs are assigned to shard clusters
	// round-robin; node counts are clamped to NodesPerShard.
	Jobs []workload.Job
	// Shards is the number of scheduler shards; the scenario creates one
	// cluster per shard so the federation never clamps.
	Shards int
	// NodesPerShard sizes each shard's cluster.
	NodesPerShard int
	// PSATaskDur, when positive, adds one scavenging PSA per cluster.
	PSATaskDur float64
	// Evolving, when non-empty, adds a fully-predictably evolving
	// application (§4) with these segments on the first cluster. Segment
	// node counts are clamped to NodesPerShard.
	Evolving []apps.Segment
	// MaxSimTime aborts runaway replays (default 10^9 s).
	MaxSimTime float64
}

// FederatedReplayResult aggregates one federated replay.
type FederatedReplayResult struct {
	Shards    int
	Nodes     int // federated node count (Shards × NodesPerShard)
	Completed int

	MeanWait float64 // rigid jobs: mean time between submit and start
	MaxWait  float64
	Makespan float64

	// ShardRigidArea is the rigid node·s placed on each shard.
	ShardRigidArea []float64
	// RigidUtilization is rigid area / (federated nodes × makespan).
	RigidUtilization float64
	// UsedFraction is the §5.3 used-resources metric over the whole
	// federation (rigid + PSA + evolving, minus PSA waste).
	UsedFraction float64

	Events int64
}

// federatedCluster names shard i's cluster; the two-digit form keeps the
// sorted order equal to the shard order, so federation.Partition assigns
// cluster i to shard i.
func federatedCluster(i int) view.ClusterID {
	return view.ClusterID(fmt.Sprintf("shard%02d", i))
}

// evolvingWatch wraps the predictable-evolving app's handler to observe the
// start of its last segment (the app itself has no completion callback).
type evolvingWatch struct {
	*apps.PredictableEvolving
	onStart func(id request.ID, nodeIDs []int)
}

func (w *evolvingWatch) OnStart(id request.ID, nodeIDs []int) {
	w.PredictableEvolving.OnStart(id, nodeIDs)
	w.onStart(id, nodeIDs)
}

// RunFederatedReplay replays a rigid-job stream, split across shards,
// through a federated CooRMv2 RMS.
func RunFederatedReplay(cfg FederatedReplayConfig) (*FederatedReplayResult, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("experiments: empty job stream")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.NodesPerShard <= 0 {
		return nil, fmt.Errorf("experiments: need a positive per-shard node count")
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 1e9
	}

	e := sim.NewEngine()
	clk := clock.SimClock{E: e}
	clusters := make(map[view.ClusterID]int, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		clusters[federatedCluster(i)] = cfg.NodesPerShard
	}
	clientRec := metrics.NewRecorder()
	recs := []*metrics.Recorder{clientRec}
	fed := federation.New(federation.Config{
		Clusters:        clusters,
		Shards:          cfg.Shards,
		ReschedInterval: 1,
		Clock:           clk,
		Metrics: func(int) *metrics.Recorder {
			r := metrics.NewRecorder()
			recs = append(recs, r)
			return r
		},
	})
	if fed.NumShards() != cfg.Shards {
		return nil, fmt.Errorf("experiments: federation clamped to %d shards", fed.NumShards())
	}
	agg := metrics.NewAggregate(recs...)

	// remaining counts the applications whose completion gates the run:
	// every rigid job, plus the evolving app if present. The engine is
	// stopped at the last completion so every metric is evaluated over
	// exactly the workload's makespan.
	remaining := len(cfg.Jobs)
	done := func() {
		remaining--
		if remaining == 0 {
			e.Stop()
		}
	}

	if cfg.PSATaskDur > 0 {
		for i := 0; i < cfg.Shards; i++ {
			p := apps.NewPSA(clk, apps.PSAConfig{
				Cluster: federatedCluster(i), TaskDuration: cfg.PSATaskDur, Metrics: clientRec,
			})
			sess := fed.Connect(p)
			p.SetMetricsID(sess.AppID())
			p.Attach(sess)
		}
	}

	var ev *apps.PredictableEvolving
	if len(cfg.Evolving) > 0 {
		segs := make([]apps.Segment, len(cfg.Evolving))
		copy(segs, cfg.Evolving)
		for i := range segs {
			if segs[i].N > cfg.NodesPerShard {
				segs[i].N = cfg.NodesPerShard
			}
		}
		remaining++
		ev = apps.NewPredictableEvolving(clk, federatedCluster(0), segs)
		last := len(segs) - 1
		watch := &evolvingWatch{PredictableEvolving: ev}
		watch.onStart = func(request.ID, []int) {
			if ev.SegmentStarted(last) {
				e.After(segs[last].Duration, "federated.evolving-end", done)
			}
		}
		sess := fed.Connect(watch)
		ev.Attach(sess)
		if err := ev.Submit(); err != nil {
			return nil, err
		}
	}

	shardRigidArea := make([]float64, cfg.Shards)
	rigids := make([]*apps.Rigid, len(cfg.Jobs))
	jobNodes := make([]int, len(cfg.Jobs))
	for i, j := range cfg.Jobs {
		i, j := i, j
		shard := i % cfg.Shards
		n := j.Nodes
		if n > cfg.NodesPerShard {
			n = cfg.NodesPerShard
		}
		jobNodes[i] = n
		shardRigidArea[shard] += float64(n) * j.Runtime
		e.At(j.Submit, "federated.submit", func() {
			r := apps.NewRigid(clk, federatedCluster(shard), n, j.Runtime)
			r.OnEnd = done
			sess := fed.Connect(r)
			r.Attach(sess)
			if err := r.Submit(); err != nil {
				panic(fmt.Sprintf("federated replay: submit job %d: %v", j.ID, err))
			}
			rigids[i] = r
		})
	}

	for remaining > 0 {
		before := e.Processed()
		e.Run(e.Now() + 3600)
		if remaining == 0 {
			break
		}
		if e.Now() > cfg.MaxSimTime {
			return nil, fmt.Errorf("experiments: federated replay exceeded %g s", cfg.MaxSimTime)
		}
		if e.Processed() == before {
			return nil, fmt.Errorf("experiments: federated replay stalled at t=%g", e.Now())
		}
	}

	res := &FederatedReplayResult{
		Shards:         cfg.Shards,
		Nodes:          cfg.Shards * cfg.NodesPerShard,
		ShardRigidArea: shardRigidArea,
		Makespan:       e.Now(),
		Events:         e.Processed(),
	}
	var waitSum, rigidArea float64
	for i, r := range rigids {
		res.Completed++
		wait := r.StartTime - cfg.Jobs[i].Submit
		if wait < 0 {
			wait = 0
		}
		waitSum += wait
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
		rigidArea += float64(jobNodes[i]) * cfg.Jobs[i].Runtime
	}
	res.MeanWait = waitSum / float64(res.Completed)
	if res.Makespan > 0 {
		res.RigidUtilization = rigidArea / (float64(res.Nodes) * res.Makespan)
	}
	res.UsedFraction = agg.UsedFraction(res.Nodes, res.Makespan)
	return res, nil
}
