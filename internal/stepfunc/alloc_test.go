package stepfunc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// ---------------------------------------------------------------------------
// Naive reference implementation. This is the seed's sort-based algebra,
// retained verbatim in spirit: operands are merged into an unsorted point
// pile and normalized with a stable sort. The merge-based production code
// must match it point for point.
// ---------------------------------------------------------------------------

func naiveNormalize(pts []point) *StepFunc {
	if len(pts) == 0 {
		return Zero()
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	out := make([]point, 0, len(pts)+1)
	if pts[0].t > 0 {
		out = append(out, point{0, 0})
	}
	for _, p := range pts {
		if len(out) > 0 && out[len(out)-1].t == p.t {
			out[len(out)-1].n = p.n // later point at same t wins
			continue
		}
		out = append(out, p)
	}
	merged := out[:0]
	for _, p := range out {
		if len(merged) > 0 && merged[len(merged)-1].n == p.n {
			continue
		}
		merged = append(merged, p)
	}
	if len(merged) == 1 && merged[0].n == 0 {
		return Zero()
	}
	return &StepFunc{pts: merged}
}

func naiveCombine(f, g *StepFunc, op func(a, b int) int) *StepFunc {
	i, j := 0, 0
	var pts []point
	va, vb := 0, 0
	for i < len(f.pts) || j < len(g.pts) {
		var t float64
		switch {
		case i < len(f.pts) && j < len(g.pts):
			t = math.Min(f.pts[i].t, g.pts[j].t)
		case i < len(f.pts):
			t = f.pts[i].t
		default:
			t = g.pts[j].t
		}
		if i < len(f.pts) && f.pts[i].t == t {
			va = f.pts[i].n
			i++
		}
		if j < len(g.pts) && g.pts[j].t == t {
			vb = g.pts[j].n
			j++
		}
		pts = append(pts, point{t, op(va, vb)})
	}
	return naiveNormalize(pts)
}

func naiveAdd(f, g *StepFunc) *StepFunc {
	return naiveCombine(f, g, func(a, b int) int { return a + b })
}
func naiveSub(f, g *StepFunc) *StepFunc {
	return naiveCombine(f, g, func(a, b int) int { return a - b })
}
func naiveMin(f, g *StepFunc) *StepFunc {
	return naiveCombine(f, g, func(a, b int) int {
		if a < b {
			return a
		}
		return b
	})
}
func naiveMax(f, g *StepFunc) *StepFunc {
	return naiveCombine(f, g, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}
func naiveClampMin(f *StepFunc, lo int) *StepFunc { return naiveMax(f, Constant(lo)) }
func naiveAddRect(f *StepFunc, t0, dur float64, n int) *StepFunc {
	return naiveAdd(f, Rect(t0, dur, n))
}

// randProfile builds a random normalized profile with values in [-5, 9].
func randProfile(r *rand.Rand) *StepFunc {
	k := r.Intn(8)
	var pts []point
	t := 0.0
	for i := 0; i < k; i++ {
		pts = append(pts, point{t, r.Intn(15) - 5})
		t += float64(1 + r.Intn(100))
	}
	return naiveNormalize(pts)
}

// TestDifferentialMergeVsNaive cross-checks every merge-based operation
// against the naive sort-based reference on randomized profiles.
func TestDifferentialMergeVsNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 5000; iter++ {
		f, g := randProfile(r), randProfile(r)
		check := func(name string, got, want *StepFunc) {
			t.Helper()
			if !got.Equal(want) {
				t.Fatalf("iter %d: %s mismatch\n f=%v\n g=%v\n got=%v\n want=%v",
					iter, name, f, g, got, want)
			}
		}
		check("Add", f.Add(g), naiveAdd(f, g))
		check("Sub", f.Sub(g), naiveSub(f, g))
		check("Min", f.Min(g), naiveMin(f, g))
		check("Max", f.Max(g), naiveMax(f, g))

		lo := r.Intn(7) - 3
		check("ClampMin", f.ClampMin(lo), naiveClampMin(f, lo))

		t0 := float64(r.Intn(300))
		dur := float64(1 + r.Intn(300))
		if r.Intn(8) == 0 {
			dur = Inf
		}
		n := r.Intn(11) - 5
		if n == 0 {
			n = 1
		}
		check("AddRect", f.AddRect(t0, dur, n), naiveAddRect(f, t0, dur, n))

		// Into variants write through a reused destination.
		dst := &StepFunc{}
		check("AddInto", f.AddInto(g, dst), naiveAdd(f, g))
		check("SubInto", f.SubInto(g, dst), naiveSub(f, g))
		check("MinInto", f.MinInto(g, dst), naiveMin(f, g))
		check("MaxInto", f.MaxInto(g, dst), naiveMax(f, g))
		check("AddRectInto", f.AddRectInto(t0, dur, n, dst), naiveAddRect(f, t0, dur, n))

		// SumAll against a fold of naive Adds.
		fs := []*StepFunc{f, g, randProfile(r), randProfile(r), randProfile(r)}
		want := Zero()
		for _, h := range fs {
			want = naiveAdd(want, h)
		}
		check("SumAll", SumAll(fs), want)
	}
}

// TestDifferentialBuilder feeds randomized (time, value) sequences through
// the Builder and checks the result against FromSteps.
func TestDifferentialBuilder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var b Builder
	for iter := 0; iter < 2000; iter++ {
		b.Reset()
		k := r.Intn(8)
		t0 := 0.0
		var steps []Step
		for i := 0; i < k; i++ {
			dur := float64(1 + r.Intn(100))
			n := r.Intn(7) - 2
			b.Append(t0, n)
			steps = append(steps, Step{dur, n})
			t0 += dur
		}
		b.Append(t0, 0)
		got, want := b.Fn(), FromSteps(steps...)
		if !got.Equal(want) {
			t.Fatalf("iter %d: Builder mismatch: got=%v want=%v (steps %v)", iter, got, want, steps)
		}
	}
}

// TestOperationsStayNormalized asserts the representation invariant on
// random results: anchored at 0, strictly increasing times, no repeated
// values, no {0,0} singleton.
func TestOperationsStayNormalized(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	assert := func(f *StepFunc) {
		t.Helper()
		if len(f.pts) == 0 {
			return
		}
		if f.pts[0].t != 0 {
			t.Fatalf("not anchored: %v", f)
		}
		if len(f.pts) == 1 && f.pts[0].n == 0 {
			t.Fatalf("unnormalized zero: %v", f)
		}
		for i := 1; i < len(f.pts); i++ {
			if f.pts[i].t <= f.pts[i-1].t {
				t.Fatalf("times not strictly increasing: %v", f)
			}
			if f.pts[i].n == f.pts[i-1].n {
				t.Fatalf("repeated value: %v", f)
			}
		}
	}
	for iter := 0; iter < 3000; iter++ {
		f, g := randProfile(r), randProfile(r)
		assert(f.Add(g))
		assert(f.Sub(g))
		assert(f.Min(g))
		assert(f.Max(g))
		assert(f.ClampMin(r.Intn(5) - 2))
		assert(f.AddRect(float64(r.Intn(50)), float64(1+r.Intn(50)), r.Intn(9)-4))
		assert(f.TrimBefore(float64(r.Intn(200))))
		assert(SumAll([]*StepFunc{f, g}))
	}
}

// ---------------------------------------------------------------------------
// Allocation-regression tests: the merge-based core must do exactly one
// exact-capacity slice allocation plus one header per fresh result, and
// none at all for the Into variants once the destination has capacity.
// ---------------------------------------------------------------------------

func TestAllocsBinaryOps(t *testing.T) {
	f := FromSteps(Step{3600, 4}, Step{3600, 3}, Step{1800, 7})
	g := FromSteps(Step{1200, 2}, Step{4000, 5}, Step{900, 1})
	cases := []struct {
		name string
		op   func() *StepFunc
		max  float64
	}{
		{"Add", func() *StepFunc { return f.Add(g) }, 2},
		{"Sub", func() *StepFunc { return f.Sub(g) }, 2},
		{"Min", func() *StepFunc { return f.Min(g) }, 2},
		{"Max", func() *StepFunc { return f.Max(g) }, 2},
		{"AddRect", func() *StepFunc { return f.AddRect(600, 5000, 3) }, 2},
		{"ClampMin", func() *StepFunc { return f.Sub(g).ClampMin(0) }, 4}, // Sub(2) + clamp(2)
		{"SumAll3", func() *StepFunc { return SumAll([]*StepFunc{f, g, f}) }, 5},
	}
	for _, c := range cases {
		got := testing.AllocsPerRun(200, func() {
			if c.op() == nil {
				t.Fatal("nil result")
			}
		})
		if got > c.max {
			t.Errorf("%s: %v allocs/op, want <= %v", c.name, got, c.max)
		}
	}
}

func TestAllocsIntoOpsZero(t *testing.T) {
	f := FromSteps(Step{3600, 4}, Step{3600, 3}, Step{1800, 7})
	g := FromSteps(Step{1200, 2}, Step{4000, 5}, Step{900, 1})
	dst := f.Add(g) // pre-size the destination
	cases := []struct {
		name string
		op   func() *StepFunc
	}{
		{"AddInto", func() *StepFunc { return f.AddInto(g, dst) }},
		{"SubInto", func() *StepFunc { return f.SubInto(g, dst) }},
		{"MinInto", func() *StepFunc { return f.MinInto(g, dst) }},
		{"MaxInto", func() *StepFunc { return f.MaxInto(g, dst) }},
		{"AddRectInto", func() *StepFunc { return f.AddRectInto(600, 5000, 3, dst) }},
	}
	for _, c := range cases {
		got := testing.AllocsPerRun(200, func() {
			if c.op() == nil {
				t.Fatal("nil result")
			}
		})
		if got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, got)
		}
	}
}

func TestAllocsIdentityFastPaths(t *testing.T) {
	f := FromSteps(Step{3600, 4}, Step{3600, 3})
	z := Zero()
	cases := []struct {
		name string
		op   func() *StepFunc
		want *StepFunc
	}{
		{"Add zero right", func() *StepFunc { return f.Add(z) }, f},
		{"Add zero left", func() *StepFunc { return z.Add(f) }, f},
		{"Sub zero", func() *StepFunc { return f.Sub(z) }, f},
		{"ClampMin no-op", func() *StepFunc { return f.ClampMin(0) }, f},
		{"AddRect empty", func() *StepFunc { return f.AddRect(10, 0, 5) }, f},
		{"TrimBefore zero", func() *StepFunc { return f.TrimBefore(0) }, f},
	}
	for _, c := range cases {
		if got := c.op(); got != c.want {
			t.Errorf("%s: expected the identical operand back, got %v", c.name, got)
		}
		if got := testing.AllocsPerRun(100, func() { c.op() }); got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, got)
		}
	}
}
