// Package view implements the paper's views (§3.1.4, §A.3): maps from a
// cluster ID to a Cluster Availability Profile (a step function of time).
// The RMS pushes two views to every application — a non-preemptive view and
// a preemptive view — and the scheduler manipulates views as scratch values
// while computing a schedule.
//
// Views are treated as immutable: every operation returns a new View.
package view

import (
	"fmt"
	"sort"
	"strings"

	"coormv2/internal/stepfunc"
)

// ClusterID identifies a cluster. The paper's evaluation uses one large
// homogeneous cluster, but the interface is multi-cluster throughout
// (requests carry a cluster ID, §3.1.1).
type ClusterID string

// View maps cluster IDs to availability profiles. A missing entry is the
// constant-zero profile.
type View map[ClusterID]*stepfunc.StepFunc

// New returns an empty view (all clusters zero).
func New() View { return View{} }

// Of builds a view from cluster/profile pairs.
func Of(pairs map[ClusterID]*stepfunc.StepFunc) View {
	v := New()
	for cid, f := range pairs {
		if f != nil && !f.IsZero() {
			v[cid] = f
		}
	}
	return v
}

// Constant returns a view in which every listed cluster has n nodes forever.
func Constant(n int, cids ...ClusterID) View {
	v := New()
	for _, cid := range cids {
		v[cid] = stepfunc.Constant(n)
	}
	return v
}

// Get returns the profile for cid (never nil; zero profile if absent or
// explicitly nil).
func (v View) Get(cid ClusterID) *stepfunc.StepFunc {
	if f, ok := v[cid]; ok && f != nil {
		return f
	}
	return stepfunc.Zero()
}

// Clusters returns the cluster IDs present in the view, sorted.
func (v View) Clusters() []ClusterID {
	out := make([]ClusterID, 0, len(v))
	for cid := range v {
		out = append(out, cid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	out := make(View, len(v))
	for cid, f := range v {
		out[cid] = f
	}
	return out
}

// combine merges two views cluster-wise with op.
func combine(a, b View, op func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc) View {
	out := New()
	seen := map[ClusterID]bool{}
	for cid := range a {
		seen[cid] = true
	}
	for cid := range b {
		seen[cid] = true
	}
	for cid := range seen {
		f := op(a.Get(cid), b.Get(cid))
		if !f.IsZero() {
			out[cid] = f
		}
	}
	return out
}

// Add returns the cluster-wise sum a + b (the paper's "+" on views).
func (v View) Add(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Add(y) })
}

// Sub returns the cluster-wise difference a − b (the paper's "−" on views).
func (v View) Sub(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Sub(y) })
}

// Union returns the cluster-wise pointwise maximum (the paper's "∪").
func (v View) Union(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Max(y) })
}

// Clip returns the cluster-wise pointwise minimum with o. It implements the
// administrator policy suggested in §3.2: limiting how much an application
// may pre-allocate by clipping its non-preemptible view.
func (v View) Clip(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Min(y) })
}

// ClampMin returns the view with every profile clamped below at lo
// (typically 0, to present applications only non-negative availability).
func (v View) ClampMin(lo int) View {
	out := New()
	for cid, f := range v {
		g := f.ClampMin(lo)
		if !g.IsZero() {
			out[cid] = g
		}
	}
	return out
}

// TrimBefore returns the view with every profile's pre-t history replaced
// by its value at t (see stepfunc.TrimBefore).
func (v View) TrimBefore(t float64) View {
	out := New()
	for cid, f := range v {
		g := f.TrimBefore(t)
		if !g.IsZero() {
			out[cid] = g
		}
	}
	return out
}

// AddRect returns the view with a rectangle of n nodes on [t0, t0+dur)
// added on cluster cid. It is Algorithm 1's
// "Vo ← Vo + {r.cid : [(r.scheduledAt, 0), (r.duration, r.nalloc)]}".
func (v View) AddRect(cid ClusterID, t0, dur float64, n int) View {
	out := v.Clone()
	out[cid] = out.Get(cid).AddRect(t0, dur, n)
	if out[cid].IsZero() {
		delete(out, cid)
	}
	return out
}

// Alloc returns the node-count that can be allocated on cluster cid during
// [t0, t0+dur) without exceeding the view, capped at want. It implements the
// paper's alloc() (§A.3), used to compute nalloc for preemptible requests.
// Negative availability counts as zero.
func (v View) Alloc(cid ClusterID, want int, t0, dur float64) int {
	if want <= 0 {
		return 0
	}
	min := v.Get(cid).MinOn(t0, t0+dur)
	if min > want {
		return want
	}
	if min < 0 {
		return 0
	}
	return min
}

// FindHole returns the first time >= after at which n nodes are available on
// cluster cid for dur seconds (the paper's findHole, §A.3). It returns +Inf
// if the request can never be served from this view.
func (v View) FindHole(cid ClusterID, n int, dur, after float64) float64 {
	return v.Get(cid).FindHole(n, dur, after)
}

// Equal reports whether two views are identical. The RMS uses it to push
// view updates only when something actually changed.
func (v View) Equal(o View) bool {
	for cid := range v {
		if !v.Get(cid).Equal(o.Get(cid)) {
			return false
		}
	}
	for cid := range o {
		if _, ok := v[cid]; !ok && !o.Get(cid).IsZero() {
			return false
		}
	}
	return true
}

// NonNegative reports whether every profile in the view is >= 0 everywhere.
// The scheduler asserts this on the availability views it exposes.
func (v View) NonNegative() bool {
	for _, f := range v {
		if !f.NonNegative() {
			return false
		}
	}
	return true
}

// String renders the view in the paper's notation, e.g.
// "{a: [(3600, 4) (3600, 3) (inf, 0)], b: [(inf, 6)]}".
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, cid := range v.Clusters() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", cid, v[cid])
	}
	b.WriteByte('}')
	return b.String()
}
