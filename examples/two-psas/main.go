// two-psas: the resource-filling experiment of §5.4 as a runnable program.
//
// Two parameter-sweep applications share the leftovers of an AMR
// application: PSA1 runs long tasks (600 s) and cannot exploit short
// availability windows; PSA2 runs short tasks (60 s) and can. Under
// CooRMv2's equi-partitioning *with filling*, PSA2 picks up what PSA1
// declines; under the strict-equi-partitioning baseline it may not.
//
// Run with: go run ./examples/two-psas [-announce 300]
package main

import (
	"flag"
	"fmt"
	"os"

	"coormv2/internal/apps"
	"coormv2/internal/core"
	"coormv2/internal/experiments"
)

func main() {
	var (
		announce = flag.Float64("announce", 300, "AMR announce interval in seconds")
		seed     = flag.Int64("seed", 1, "AMR profile seed")
		steps    = flag.Int("steps", 200, "AMR profile length (paper: 1000)")
	)
	flag.Parse()

	fmt.Printf("One AMR (announce %gs) + PSA1 (d_task 600 s) + PSA2 (d_task 60 s)\n\n", *announce)

	for _, policy := range []core.PreemptPolicy{
		core.StrictEquiPartition,
		core.EquiPartitionFilling,
	} {
		res, err := experiments.RunScenario(experiments.ScenarioConfig{
			Seed: *seed, Steps: *steps,
			TargetEff: 0.75, Overcommit: 1, Mode: apps.NEADynamic,
			AnnounceInterval: *announce,
			PSATaskDurations: []float64{600, 60},
			Policy:           policy,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "two-psas: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", policy)
		fmt.Printf("  PSA1 (600s tasks): %10.0f node·s useful, %6.0f wasted\n",
			res.PSAArea[0]-res.PSAWaste[0], res.PSAWaste[0])
		fmt.Printf("  PSA2 ( 60s tasks): %10.0f node·s useful, %6.0f wasted\n",
			res.PSAArea[1]-res.PSAWaste[1], res.PSAWaste[1])
		fmt.Printf("  used resources:    %10.2f%%\n\n", 100*res.UsedFraction)
	}
	fmt.Println("Filling lets the short-task PSA exploit the holes the long-task PSA")
	fmt.Println("declines, which is exactly the gain Fig. 11 of the paper reports.")
}
