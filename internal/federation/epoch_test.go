package federation

import (
	"fmt"
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// viewRecorder retains every delivered merged view, so the test can check
// that later in-place cache updates never mutate an already-delivered map
// (the copy-on-write loan contract).
type viewRecorder struct {
	nps, ps []view.View
}

func (r *viewRecorder) OnViews(np, p view.View) {
	r.nps = append(r.nps, np)
	r.ps = append(r.ps, p)
}
func (r *viewRecorder) OnStart(request.ID, []int) {}
func (r *viewRecorder) OnKill(string)             {}

func epochFed(t *testing.T, e *sim.Engine, shards int) (*Federator, []view.ClusterID) {
	t.Helper()
	clusters := map[view.ClusterID]int{}
	cids := make([]view.ClusterID, 4)
	for i := range cids {
		cids[i] = view.ClusterID(fmt.Sprintf("c%d", i))
		clusters[cids[i]] = 8
	}
	return New(Config{
		Clusters:        clusters,
		Shards:          shards,
		ReschedInterval: 1,
		GracePeriod:     1e18,
		Clock:           clock.SimClock{E: e},
	}), cids
}

// TestMergeCacheReusesCleanShards drives localized churn on one shard and
// checks that merged-view deliveries re-merge only the changed shard once
// the cache is warm.
func TestMergeCacheReusesCleanShards(t *testing.T) {
	e := sim.NewEngine()
	fed, cids := epochFed(t, e, 4)
	// Two standing sessions on the churn cluster: every arrival changes the
	// preemptible shares there, so views really re-merge each round.
	for i := 0; i < 2; i++ {
		standing := fed.Connect(&viewRecorder{})
		if _, err := standing.Request(rms.RequestSpec{Cluster: cids[0], N: 4, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
			t.Fatal(err)
		}
	}
	rec := &viewRecorder{}
	sess := fed.Connect(rec)
	if _, err := sess.Request(rms.RequestSpec{Cluster: cids[0], N: 2, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	baseRemerged, baseReused := fed.MergeStats()

	// Steady churn on cluster 0 only (short firm allocations, so the
	// availability really changes): every re-merge after warm-up should
	// fold exactly one shard and reuse the other three.
	for i := 0; i < 8; i++ {
		if _, err := sess.Request(rms.RequestSpec{Cluster: cids[0], N: 1, Duration: 0.4, Type: request.NonPreempt}); err != nil {
			t.Fatal(err)
		}
		e.Run(e.Now() + 1)
	}
	remerged, reused := fed.MergeStats()
	dRemerged, dReused := remerged-baseRemerged, reused-baseReused
	if dRemerged == 0 {
		t.Fatal("churn produced no re-merges; the benchmark scenario is broken")
	}
	if dReused < 3*dRemerged {
		t.Errorf("re-merged %d shard views but reused only %d; localized churn should reuse ~3 of 4 shards per merge",
			dRemerged, dReused)
	}
}

// TestMergeCacheDeliveredViewsImmutable checks the copy-on-write loan: a
// view delivered to the application must never change afterwards, even
// though the session keeps updating its cached merge in place.
func TestMergeCacheDeliveredViewsImmutable(t *testing.T) {
	e := sim.NewEngine()
	fed, cids := epochFed(t, e, 4)
	rec := &viewRecorder{}
	sess := fed.Connect(rec)
	if _, err := sess.Request(rms.RequestSpec{Cluster: cids[0], N: 2, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)

	// Snapshot every delivered view (shallow copy of the map, profiles are
	// immutable), then churn across clusters and verify the originals.
	type snap struct {
		v    view.View
		copy view.View
	}
	var snaps []snap
	for _, v := range append(append([]view.View{}, rec.nps...), rec.ps...) {
		snaps = append(snaps, snap{v, v.Clone()})
	}
	for i := 0; i < 12; i++ {
		if _, err := sess.Request(rms.RequestSpec{
			Cluster: cids[i%len(cids)], N: 1, Duration: 0.4, Type: request.Preempt,
		}); err != nil {
			t.Fatal(err)
		}
		e.Run(e.Now() + 1)
	}
	for i, sn := range snaps {
		if len(sn.v) != len(sn.copy) {
			t.Fatalf("delivered view %d mutated after delivery: %d clusters, had %d", i, len(sn.v), len(sn.copy))
		}
		for cid, f := range sn.copy {
			if sn.v[cid] != f {
				t.Fatalf("delivered view %d mutated after delivery on cluster %s", i, cid)
			}
		}
	}
}

// TestMergeCacheSurvivesCrashAndMigration pins the cache against topology
// transitions: after a crash the dead shard's clusters vanish from the
// merge, after restart+rounds they return, and a migration never leaves a
// cluster duplicated or stranded in the merged view.
func TestMergeCacheSurvivesCrashAndMigration(t *testing.T) {
	e := sim.NewEngine()
	fed, cids := epochFed(t, e, 2)
	rec := &viewRecorder{}
	sess := fed.Connect(rec)
	if _, err := sess.Request(rms.RequestSpec{Cluster: cids[0], N: 2, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)

	last := func() (view.View, view.View) {
		if len(rec.nps) == 0 {
			t.Fatal("no views delivered")
		}
		return rec.nps[len(rec.nps)-1], rec.ps[len(rec.ps)-1]
	}

	fed.CrashShard(1)
	np, _ := last()
	sh1 := fed.Shard(1).Clusters()
	for cid := range np {
		if _, dead := sh1[cid]; dead {
			t.Fatalf("crashed shard's cluster %s still visible in merge", cid)
		}
	}
	fed.RestartShard(1)
	e.Run(e.Now() + 3)
	np, _ = last()
	for cid := range fed.Shard(1).Clusters() {
		if _, ok := np[cid]; !ok {
			t.Fatalf("restarted shard's cluster %s missing from merge", cid)
		}
	}

	// Migrate a cluster from shard 0 to shard 1 and make sure the merged
	// view still shows every cluster exactly once with fresh profiles.
	var donorCluster view.ClusterID
	for cid := range fed.Shard(0).Clusters() {
		if cid != cids[0] { // keep the busy cluster put; move an idle one
			donorCluster = cid
			break
		}
	}
	if _, err := fed.MigrateCluster(donorCluster, 1); err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 3)
	np, p := last()
	for _, v := range []view.View{np, p} {
		for cid := range v {
			if _, ok := fed.Owner(cid); !ok {
				t.Fatalf("merged view shows unknown cluster %s", cid)
			}
		}
	}
	if _, ok := np[donorCluster]; !ok {
		t.Fatalf("migrated cluster %s missing from merged view", donorCluster)
	}
	if err := fed.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalancerSkipsQuiescentChecks pins the epoch fast path: a check on a
// quiescent federation skips the scoring pass entirely, and any load
// mutation (even one accepted request) re-arms the full pass.
func TestRebalancerSkipsQuiescentChecks(t *testing.T) {
	e := sim.NewEngine()
	fed, cids := epochFed(t, e, 2)
	rb := NewRebalancer(fed, RebalancerConfig{Interval: 1})
	sess := fed.Connect(&viewRecorder{})
	if _, err := sess.Request(rms.RequestSpec{Cluster: cids[0], N: 1, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(2)

	rb.CheckNow() // first check always runs
	if got := rb.SkippedChecks(); got != 0 {
		t.Fatalf("first check skipped (%d)", got)
	}
	rb.CheckNow() // nothing moved since: skipped
	rb.CheckNow()
	if got := rb.SkippedChecks(); got != 2 {
		t.Fatalf("quiescent checks skipped = %d, want 2", got)
	}
	if _, err := sess.Request(rms.RequestSpec{Cluster: cids[1], N: 1, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 2)
	rb.CheckNow() // the accepted request advanced an epoch: full pass runs
	if got := rb.SkippedChecks(); got != 2 {
		t.Fatalf("post-mutation check skipped (skipped=%d)", got)
	}
	if got := rb.Checks(); got != 4 {
		t.Fatalf("checks = %d, want 4", got)
	}
}
