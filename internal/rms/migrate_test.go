package rms

import (
	"errors"
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

const (
	mcX = view.ClusterID("mx")
	mcY = view.ClusterID("my")
	mcZ = view.ClusterID("mz")
)

// newMigratePair builds two servers on one simulated clock: donor a with
// clusters {mx, my}, target b with {mz}, both with recorders.
func newMigratePair(t *testing.T) (*sim.Engine, *Server, *Server, *metrics.Recorder, *metrics.Recorder) {
	t.Helper()
	e := sim.NewEngine()
	clk := clock.SimClock{E: e}
	recA, recB := metrics.NewRecorder(), metrics.NewRecorder()
	a := NewServer(Config{
		Clusters:        map[view.ClusterID]int{mcX: 4, mcY: 4},
		ReschedInterval: 1,
		Clock:           clk,
		Metrics:         recA,
	})
	b := NewServer(Config{
		Clusters:        map[view.ClusterID]int{mcZ: 4},
		ReschedInterval: 1,
		Clock:           clk,
		Metrics:         recB,
	})
	return e, a, b, recA, recB
}

func TestDetachAttachRoundTrip(t *testing.T) {
	e, a, b, recA, recB := newMigratePair(t)
	appA, appB := &testApp{}, &testApp{}
	sa, err := a.ConnectID(appA, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ConnectID(appB, 7); err != nil {
		t.Fatal(err)
	}
	// A started allocation, a pending NEXT child, and a preemptible request,
	// all on mx; one bystander request on my that must stay behind.
	np, err := sa.Request(RequestSpec{Cluster: mcX, N: 3, Duration: 1e6, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Request(RequestSpec{Cluster: mcX, N: 2, Duration: 1e6, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: np}); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Request(RequestSpec{Cluster: mcX, N: 1, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	stay, err := sa.Request(RequestSpec{Cluster: mcY, N: 2, Duration: 1e6, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if len(appA.starts) < 2 {
		t.Fatalf("starts on donor = %v, want the mx and my allocations running", appA.starts)
	}
	heldBefore := recA.Current(7)

	snap, err := a.DetachCluster(mcX)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cluster != mcX || snap.Nodes != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap.Requests(); got != 3 {
		t.Fatalf("snapshot carries %d requests, want 3", got)
	}
	// Held IDs move with the snapshot: the running ¬P (3) + preemptible (1).
	if got := snap.HeldNodes(); got != 4 {
		t.Fatalf("snapshot holds %d node IDs, want 4", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("donor invariants after detach: %v", err)
	}
	// The donor's recorder dropped exactly the migrated occupancy.
	if got := recA.Current(7); got != heldBefore-4 {
		t.Fatalf("donor current = %d, want %d", got, heldBefore-4)
	}

	var remaps [][2]request.ID
	if err := b.AttachCluster(snap, func(appID int, oldID, newID request.ID) {
		if appID != 7 {
			t.Errorf("observe appID = %d, want 7", appID)
		}
		remaps = append(remaps, [2]request.ID{oldID, newID})
	}); err != nil {
		t.Fatal(err)
	}
	if len(remaps) != 3 {
		t.Fatalf("observe saw %d requests, want 3", len(remaps))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("target invariants after attach: %v", err)
	}
	if got := recB.Current(7); got != 4 {
		t.Fatalf("target current = %d, want 4", got)
	}
	if got := recB.Count(7, metrics.MigratedRequests); got != 3 {
		t.Fatalf("migrated-requests counter = %d, want 3", got)
	}

	// The bystander request is untouched and the donor no longer knows mx.
	if err := sa.Done(stay, nil); err != nil {
		t.Fatalf("bystander done: %v", err)
	}
	if _, err := sa.Request(RequestSpec{Cluster: mcX, N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Fatal("donor accepted a request for the detached cluster")
	}

	// On the target, the migrated allocation keeps running: finishing the
	// parent hands its node IDs to the NEXT child at the new local IDs.
	sb := b.sessions[7]
	if sb == nil {
		t.Fatal("no session 7 on target")
	}
	newNP := remaps[0][1]
	if err := sb.Done(newNP, nil); err != nil {
		t.Fatalf("done on migrated request: %v", err)
	}
	e.Run(e.Now() + 3)
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("target invariants after done: %v", err)
	}
	// The NEXT child started on the target with inherited node IDs.
	found := false
	for _, st := range appB.starts {
		if st.id == remaps[1][1] && len(st.ids) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("NEXT child never started on target; starts = %v", appB.starts)
	}

	// Cluster loads and churn moved: the target's mx row carries the donor's
	// cumulative churn counter.
	for _, l := range b.ClusterLoads() {
		if l.Cluster == mcX && l.Churn != 3 {
			t.Fatalf("migrated churn = %d, want 3", l.Churn)
		}
	}
}

func TestDetachClusterEntangledAndLast(t *testing.T) {
	e, a, _, _, _ := newMigratePair(t)
	sa, err := a.ConnectID(&testApp{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	px, err := sa.Request(RequestSpec{Cluster: mcX, N: 1, Duration: 1e6, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	// Live cross-cluster COALLOC: mx ↔ my are entangled in both directions.
	if _, err := sa.Request(RequestSpec{Cluster: mcY, N: 1, Duration: 1e6, Type: request.NonPreempt,
		RelatedHow: request.Coalloc, RelatedTo: px}); err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if _, err := a.DetachCluster(mcX); !errors.Is(err, ErrEntangled) {
		t.Fatalf("detach entangled = %v, want ErrEntangled", err)
	}
	if _, err := a.DetachCluster(mcY); !errors.Is(err, ErrEntangled) {
		t.Fatalf("detach entangled (child side) = %v, want ErrEntangled", err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("invariants after refused detach: %v", err)
	}

	// Once both sides finish, the relation is dead and the cluster detaches;
	// severing drops the dead edge from the surviving state.
	for _, r := range a.sessions[1].app.Requests() {
		if err := sa.Done(r.ID, nil); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.DetachCluster(mcX)
	if err != nil {
		t.Fatalf("detach after finish: %v", err)
	}
	for _, as := range snap.Apps {
		for _, rs := range as.Requests {
			if rs.RelatedHow != request.Free {
				t.Fatalf("dead relation not severed in snapshot: %+v", rs)
			}
		}
	}
	if _, err := a.DetachCluster(mcY); !errors.Is(err, ErrLastCluster) {
		t.Fatalf("detach last = %v, want ErrLastCluster", err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDetachClusterStoppedAndUnknown(t *testing.T) {
	_, a, _, _, _ := newMigratePair(t)
	if _, err := a.DetachCluster("nope"); err == nil {
		t.Fatal("detached an unknown cluster")
	}
	a.Stop()
	if _, err := a.DetachCluster(mcX); !errors.Is(err, ErrStopped) {
		t.Fatalf("detach on stopped = %v, want ErrStopped", err)
	}
}
