package apps

import (
	"math"

	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Moldable is the moldable application of §4: it "waits for the RMS to send
// a non-preemptive view, then runs a resource selection algorithm, which
// chooses a non-preemptible request. Should the state of the system change
// before the application starts, ... it re-runs its selection algorithm and
// updates its request", as in CooRM.
type Moldable struct {
	base

	Cluster view.ClusterID
	// MaxNodes bounds the selection search.
	MaxNodes int
	// DurationFor returns the execution time on n nodes (the moldable
	// application's own performance model).
	DurationFor func(n int) float64

	reqID    request.ID
	haveReq  bool
	ChosenN  int
	Started  bool
	StartIDs []int
	// EstEnd is the end-time estimate of the last selection.
	EstEnd float64
}

// NewMoldable creates a moldable application.
func NewMoldable(clk clock.Clock, cid view.ClusterID, maxNodes int, durationFor func(int) float64) *Moldable {
	return &Moldable{base: base{clk: clk}, Cluster: cid, MaxNodes: maxNodes, DurationFor: durationFor}
}

// OnViews runs the resource-selection algorithm: for every candidate
// node-count it estimates, from the view, when the request would start
// (this is the point of views — "applications can scan their view and
// estimate when a request would be served", §3.1.4) and picks the
// node-count with the earliest completion.
func (m *Moldable) OnViews(np, _ view.View) {
	if m.Started {
		return
	}
	bestN, bestEnd := 0, math.Inf(1)
	for n := 1; n <= m.MaxNodes; n++ {
		d := m.DurationFor(n)
		start := np.FindHole(m.Cluster, n, d, m.now())
		if math.IsInf(start, 1) {
			continue
		}
		if end := start + d; end < bestEnd {
			bestN, bestEnd = n, end
		}
	}
	if bestN == 0 || bestN == m.ChosenN {
		return
	}
	// Update the pending request: withdraw and resubmit.
	if m.haveReq {
		if err := m.sess.Done(m.reqID, nil); err != nil {
			return
		}
		m.haveReq = false
	}
	id, err := m.sess.Request(rms.RequestSpec{
		Cluster: m.Cluster, N: bestN, Duration: m.DurationFor(bestN), Type: request.NonPreempt,
	})
	if err != nil {
		return
	}
	m.reqID = id
	m.haveReq = true
	m.ChosenN = bestN
	m.EstEnd = bestEnd
}

// OnStart locks the choice in.
func (m *Moldable) OnStart(id request.ID, nodeIDs []int) {
	if id != m.reqID {
		return
	}
	m.Started = true
	m.StartIDs = nodeIDs
}
