package apps

import (
	"fmt"

	"coormv2/internal/amr"
	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// ProbableNEAConfig parametrizes the probable-execution NEA of §4: the
// application "sends a 'good-enough' pre-allocation and optimistically
// assumes never to outgrow it. If at some point the pre-allocation is
// insufficient ... the application has to be able to checkpoint. It can
// later resume its computations by submitting a new, larger
// pre-allocation."
type ProbableNEAConfig struct {
	Cluster   view.ClusterID
	Profile   amr.Profile
	Params    amr.SpeedupParams
	TargetEff float64
	// InitialPreAllocN is the optimistic first guess.
	InitialPreAllocN int
	// GrowFactor scales the new pre-allocation after an outgrow
	// (relative to the node-count that did not fit). Default 1.5.
	GrowFactor float64
	// CheckpointCost is the time (s) spent writing a checkpoint before
	// releasing resources, and again restoring it after resuming.
	CheckpointCost float64
	// Horizon is the pre-allocation duration (default 1e8 s).
	Horizon float64
}

// ProbableNEA is a non-predictably evolving application using the probable
// execution strategy. Compare with NEA (sure execution).
type ProbableNEA struct {
	base
	cfg ProbableNEAConfig

	paID    request.ID
	curReq  request.ID
	curN    int
	preN    int
	step    int
	waiting bool // between checkpoint and restart

	finished bool

	// Resubmissions counts how many times the application had to
	// checkpoint and requeue with a larger pre-allocation.
	Resubmissions int
	// CheckpointTime is the total time spent checkpointing/restoring.
	CheckpointTime float64

	StartTime float64
	EndTime   float64
	Err       error
	OnFinish  func()
}

// NewProbableNEA creates the application.
func NewProbableNEA(clk clock.Clock, cfg ProbableNEAConfig) *ProbableNEA {
	if cfg.GrowFactor <= 1 {
		cfg.GrowFactor = 1.5
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 1e8
	}
	if cfg.TargetEff <= 0 {
		cfg.TargetEff = 0.75
	}
	return &ProbableNEA{base: base{clk: clk}, cfg: cfg}
}

// Finished reports completion.
func (a *ProbableNEA) Finished() bool { return a.finished }

// Step returns the current step index.
func (a *ProbableNEA) Step() int { return a.step }

// desired returns the unclamped target node count for a step — unlike the
// sure-execution NEA, the probable one may find its pre-allocation too
// small.
func (a *ProbableNEA) desired(step int) int {
	n := a.cfg.Params.NodesForEfficiency(a.cfg.Profile[step], a.cfg.TargetEff)
	if n < 1 {
		n = 1
	}
	return n
}

// Submit sends the initial optimistic pre-allocation.
func (a *ProbableNEA) Submit() error {
	if len(a.cfg.Profile) == 0 {
		return fmt.Errorf("apps: ProbableNEA needs a profile")
	}
	if a.cfg.InitialPreAllocN < 1 {
		return fmt.Errorf("apps: ProbableNEA needs a positive initial pre-allocation")
	}
	a.preN = a.cfg.InitialPreAllocN
	return a.submitChain()
}

// submitChain sends a pre-allocation of preN plus the initial allocation
// for the current step, clamped to the pre-allocation.
func (a *ProbableNEA) submitChain() error {
	pa, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: a.preN, Duration: a.cfg.Horizon, Type: request.PreAlloc,
	})
	if err != nil {
		return err
	}
	n := a.desired(a.step)
	if n > a.preN {
		n = a.preN
	}
	r, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: n, Duration: a.cfg.Horizon,
		Type: request.NonPreempt, RelatedHow: request.Coalloc, RelatedTo: pa,
	})
	if err != nil {
		return err
	}
	a.paID, a.curReq, a.curN = pa, r, n
	a.waiting = true
	return nil
}

// OnViews is ignored (like the sure-execution NEA, the application relies
// on its pre-allocation).
func (a *ProbableNEA) OnViews(_, _ view.View) {}

// OnStart drives the state machine.
func (a *ProbableNEA) OnStart(id request.ID, _ []int) {
	if id != a.curReq {
		return
	}
	if a.waiting {
		a.waiting = false
		if a.StartTime == 0 && a.step == 0 {
			a.StartTime = a.now()
		}
		restore := 0.0
		if a.Resubmissions > 0 {
			restore = a.cfg.CheckpointCost // restoring the checkpoint
			a.CheckpointTime += restore
		}
		a.clk.AfterFunc(restore, "probable.restore", a.runStep)
		return
	}
	// A spontaneous update inside the pre-allocation completed.
	a.runStep()
}

// runStep executes the current step.
func (a *ProbableNEA) runStep() {
	if a.finished || a.killed {
		return
	}
	if a.step >= len(a.cfg.Profile) {
		a.finish()
		return
	}
	dur := a.cfg.Params.StepTime(a.curN, a.cfg.Profile[a.step])
	a.clk.AfterFunc(dur, "probable.step", func() {
		a.step++
		if a.step >= len(a.cfg.Profile) {
			a.finish()
			return
		}
		a.advance()
	})
}

// advance decides what to do before the next step: keep going, update
// inside the pre-allocation, or checkpoint and resubmit with a larger one.
func (a *ProbableNEA) advance() {
	want := a.desired(a.step)
	if want > a.preN {
		// Outgrown: checkpoint, release everything, resubmit bigger
		// (the RMS "might have placed it at the end of the waiting
		// queue", §4 — the new pre-allocation competes like any other).
		a.Resubmissions++
		a.CheckpointTime += a.cfg.CheckpointCost
		cur, pa := a.curReq, a.paID
		a.clk.AfterFunc(a.cfg.CheckpointCost, "probable.checkpoint", func() {
			if err := a.sess.Done(cur, nil); err != nil {
				a.Err = err
				return
			}
			if err := a.sess.Done(pa, nil); err != nil {
				a.Err = err
				return
			}
			a.preN = int(float64(want) * a.cfg.GrowFactor)
			if err := a.submitChain(); err != nil {
				a.Err = err
			}
		})
		return
	}
	if want == a.curN {
		a.runStep()
		return
	}
	// Spontaneous update inside the pre-allocation (guaranteed).
	newReq, err := a.sess.Request(rms.RequestSpec{
		Cluster: a.cfg.Cluster, N: want, Duration: a.cfg.Horizon,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: a.curReq,
	})
	if err != nil {
		a.Err = err
		return
	}
	if err := a.sess.Done(a.curReq, nil); err != nil {
		a.Err = err
		return
	}
	a.curReq = newReq
	a.curN = want
	// The step resumes when OnStart delivers the new allocation.
}

func (a *ProbableNEA) finish() {
	a.finished = true
	a.EndTime = a.now()
	_ = a.sess.Done(a.curReq, nil)
	_ = a.sess.Done(a.paID, nil)
	if a.OnFinish != nil {
		a.OnFinish()
	}
}
