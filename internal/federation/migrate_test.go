package federation

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// newMigrateFederation builds a 2-shard federation over three clusters:
// Partition assigns {alpha, gamma} to shard 0 and {beta} to shard 1.
func newMigrateFederation(t *testing.T, pol RecoveryPolicy) (*sim.Engine, *Federator, *metrics.Recorder) {
	t.Helper()
	e := sim.NewEngine()
	fedRec := metrics.NewRecorder()
	f := New(Config{
		Clusters:          map[view.ClusterID]int{cA: 8, cB: 8, cC: 8},
		Shards:            2,
		ReschedInterval:   1,
		Clock:             clock.SimClock{E: e},
		Recovery:          pol,
		FederationMetrics: fedRec,
		Metrics:           func(int) *metrics.Recorder { return metrics.NewRecorder() },
	})
	if s, _ := f.Owner(cA); s != 0 {
		t.Fatalf("alpha on shard %d, want 0", s)
	}
	if s, _ := f.Owner(cC); s != 0 {
		t.Fatalf("gamma on shard %d, want 0", s)
	}
	return e, f, fedRec
}

func TestMigrateClusterHandsOverLiveState(t *testing.T) {
	e, f, fedRec := newMigrateFederation(t, KillOnCrash)
	app, bystander := &testApp{}, &testApp{}
	sess := f.Connect(app)
	bsess := f.Connect(bystander)

	np, err := sess.Request(rms.RequestSpec{Cluster: cC, N: 3, Duration: 1e6, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	child, err := sess.Request(rms.RequestSpec{Cluster: cC, N: 2, Duration: 50, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: np})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bsess.Request(rms.RequestSpec{Cluster: cB, N: 1, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if len(app.starts) != 1 || app.starts[0].id != np {
		t.Fatalf("starts before migration = %v, want [%d]", app.starts, np)
	}

	rep, err := f.MigrateCluster(cC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 0 || rep.To != 1 || rep.Requests != 2 || rep.Nodes != 3 || rep.Apps != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if s, _ := f.Owner(cC); s != 1 {
		t.Fatalf("gamma owned by shard %d after migration, want 1", s)
	}
	mustCheck(t, f)
	if got := fedRec.Count(0, metrics.MigratedClusters); got != 1 {
		t.Errorf("migrated-clusters counter = %d, want 1", got)
	}

	// The running allocation finishes under its original federated ID — on
	// the new shard — and the NEXT child starts there with inherited IDs.
	if err := sess.Done(np, nil); err != nil {
		t.Fatalf("done on migrated request: %v", err)
	}
	e.Run(e.Now() + 3)
	started := false
	for _, st := range app.starts {
		if st.id == child && len(st.ids) == 2 {
			started = true
		}
	}
	if !started {
		t.Fatalf("migrated NEXT child never started; starts = %v", app.starts)
	}
	mustCheck(t, f)

	// Merged views keep the migrated cluster visible at full capacity once
	// its allocations drain.
	e.Run(e.Now() + 60)
	nv, _ := bystander.lastViews(t)
	if got := nv.Get(cC).Value(e.Now()); got != 8 {
		t.Errorf("migrated cluster shows %d free nodes, want 8", got)
	}

	// New requests for the cluster route to the new owner.
	id2, err := sess.Request(rms.RequestSpec{Cluster: cC, N: 1, Duration: 5, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 2)
	if err := sess.Done(id2, nil); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, f)
}

func TestMigrateClusterErrors(t *testing.T) {
	e, f, _ := newMigrateFederation(t, KillOnCrash)
	sess := f.Connect(&testApp{})
	px, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: 1e6, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Request(rms.RequestSpec{Cluster: cC, N: 1, Duration: 1e6, Type: request.NonPreempt,
		RelatedHow: request.Coalloc, RelatedTo: px}); err != nil {
		t.Fatal(err)
	}
	e.Run(3)

	if _, err := f.MigrateCluster("nope", 1); err == nil {
		t.Fatal("migrated an unknown cluster")
	}
	if _, err := f.MigrateCluster(cA, 0); err == nil || !strings.Contains(err.Error(), "already owned") {
		t.Fatalf("same-shard migration = %v", err)
	}
	if _, err := f.MigrateCluster(cA, 5); err == nil {
		t.Fatal("migrated to an out-of-range shard")
	}
	// alpha↔gamma carry a live COALLOC. Historically this raised
	// rms.ErrEntangled; the severing detach now migrates the cluster,
	// converting the crossing relation into an equivalent NotBefore floor.
	if _, err := f.MigrateCluster(cC, 1); err != nil {
		t.Fatalf("entangled migration = %v, want success after ErrEntangled relaxation", err)
	}
	mustCheck(t, f)
	// alpha is now shard 0's only cluster.
	if _, err := f.MigrateCluster(cA, 1); !errors.Is(err, rms.ErrLastCluster) {
		t.Fatalf("last-cluster migration = %v, want ErrLastCluster", err)
	}
	// Down shards refuse migrations in either direction.
	f.CrashShard(1)
	if _, err := f.MigrateCluster(cC, 0); err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("migration from down shard = %v", err)
	}
	f.RestartShard(1)
	mustCheck(t, f)
}

func TestMigrateThenCrashRequeueReplaysOnNewOwner(t *testing.T) {
	e, f, _ := newMigrateFederation(t, RequeueOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	id, err := sess.Request(rms.RequestSpec{Cluster: cC, N: 2, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)

	if _, err := f.MigrateCluster(cC, 1); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, f)

	// The migrated request now lives on shard 1: crash it, and the request
	// requeues and replays under the same federated ID.
	rep := f.CrashShard(1)
	if rep.Requeued != 1 {
		t.Fatalf("crash requeued %d, want 1 (the migrated request)", rep.Requeued)
	}
	mustCheck(t, f)
	rrep := f.RestartShard(1)
	if rrep.Replayed != 1 {
		t.Fatalf("restart replayed %d, want 1", rrep.Replayed)
	}
	e.Run(e.Now() + 3)
	restarted := 0
	for _, st := range app.starts {
		if st.id == id {
			restarted++
		}
	}
	if restarted != 2 {
		t.Fatalf("request %d started %d times, want 2 (original + replay)", id, restarted)
	}
	if err := sess.Done(id, nil); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, f)
}

// churnOn issues n short-lived preemptible request/done pairs on a cluster.
func churnOn(t *testing.T, e *sim.Engine, sess *Session, cid view.ClusterID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 1, Duration: math.Inf(1), Type: request.Preempt})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(e.Now() + 0.01)
		if err := sess.Done(id, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRebalancerMovesHotCluster(t *testing.T) {
	run := func() (*Rebalancer, *Federator) {
		e, f, _ := newMigrateFederation(t, KillOnCrash)
		sess := f.Connect(&testApp{})
		rb := NewRebalancer(f, RebalancerConfig{Interval: 5})
		rb.Start()
		// Skew shard 0: heavy churn on gamma, some on alpha, none on beta.
		churnOn(t, e, sess, cC, 20)
		churnOn(t, e, sess, cA, 5)
		e.Run(e.Now() + 6) // past the first rebalance check
		return rb, f
	}
	rb, f := run()
	if rb.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1; trace = %v", rb.Migrations(), rb.Trace())
	}
	if s, _ := f.Owner(cC); s != 1 {
		t.Fatalf("hot cluster on shard %d after rebalance, want 1", s)
	}
	mustCheck(t, f)
	if len(rb.Trace()) != 1 || !strings.Contains(rb.Trace()[0], "migrate cluster=gamma from=0 to=1") {
		t.Fatalf("trace = %v", rb.Trace())
	}
	// A balanced federation stays put: subsequent checks migrate nothing.
	rb2, _ := run()
	if !reflect.DeepEqual(rb.Trace(), rb2.Trace()) {
		t.Fatalf("same scenario, different traces:\n%v\n%v", rb.Trace(), rb2.Trace())
	}
	rb.Stop()
}

func TestRebalancerIdleFederationIsNotChurned(t *testing.T) {
	e, f, _ := newMigrateFederation(t, KillOnCrash)
	f.Connect(&testApp{})
	rb := NewRebalancer(f, RebalancerConfig{Interval: 5})
	rb.Start()
	e.Run(60)
	if rb.Migrations() != 0 {
		t.Fatalf("idle federation migrated %d clusters: %v", rb.Migrations(), rb.Trace())
	}
	if rb.Checks() < 10 {
		t.Fatalf("checks = %d, want ≥10 over 60s at interval 5", rb.Checks())
	}
	mustCheck(t, f)
}

func TestRebalancerSkipsDownShards(t *testing.T) {
	e, f, _ := newMigrateFederation(t, RequeueOnCrash)
	sess := f.Connect(&testApp{})
	rb := NewRebalancer(f, RebalancerConfig{Interval: 5})
	churnOn(t, e, sess, cC, 20)
	f.CrashShard(1)
	rb.CheckNow()
	if rb.Migrations() != 0 {
		t.Fatalf("migrated onto a down shard: %v", rb.Trace())
	}
	f.RestartShard(1)
	mustCheck(t, f)
}
